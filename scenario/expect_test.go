package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// frozenSuite builds a scenario whose population is entirely stubborn:
// nothing ever changes, so every observable (rounds, convergence,
// plurality support, messages) is an exact constant — which makes the
// violation messages golden-testable down to the byte.
func frozenSuite(expect string) string {
	return `{
		"schema": 1, "name": "frozen",
		"params": {"n": 100},
		"replicas": 2,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
			{"name": "ones", "color": 1, "stubborn": true}
		],
		"stop": {"max_rounds": 5},
		"expect": ` + expect + `
	}`
}

// TestExpectPredicateGolden drives every predicate type through a
// deterministic suite and pins the exact failure strings (and the exact
// pass conditions at the boundary).
func TestExpectPredicateGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// want are the golden violation messages, in order; empty = pass.
		want []string
	}{
		{
			name: "rounds-max-pass-boundary",
			src:  frozenSuite(`[{"rounds": {"max": 5, "min": 5}}]`),
		},
		{
			name: "rounds-max-violated",
			src:  frozenSuite(`[{"name": "round budget", "rounds": {"max": 4}}]`),
			want: []string{
				`scenario "frozen": expect[0] (round budget): cell 0 (n=100), group "run": rounds.max: got 5, want <= 4`,
			},
		},
		{
			name: "rounds-max-mean-expression-violated",
			src:  frozenSuite(`[{"rounds": {"max_mean": "n / 25"}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": rounds.max_mean: got 5, want <= 4`,
			},
		},
		{
			name: "rounds-min-mean-violated",
			src:  frozenSuite(`[{"rounds": {"min_mean": 6}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": rounds.min_mean: got 5, want >= 6`,
			},
		},
		{
			name: "rounds-q95-violated",
			src:  frozenSuite(`[{"rounds": {"max_q95": 4.5}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": rounds.max_q95: got 5, want <= 4.5`,
			},
		},
		{
			name: "converged-violated",
			src:  frozenSuite(`[{"converged": {}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": converged.min_fraction: got 0/2 replicas converged (0), want >= 1`,
			},
		},
		{
			name: "converged-min-fraction-pass",
			src:  frozenSuite(`[{"converged": {"min_fraction": 0}}]`),
		},
		{
			name: "almost-consensus-violated",
			src:  frozenSuite(`[{"almost_consensus": {"min_fraction": 0.9}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": almost_consensus.min_fraction: got replica 0 plurality support 0.6 (60/100), want >= 0.9`,
			},
		},
		{
			name: "almost-consensus-pass-boundary",
			src:  frozenSuite(`[{"almost_consensus": {"min_fraction": 0.6}}]`),
		},
		{
			name: "messages-min-violated-on-sampling-engine",
			src:  frozenSuite(`[{"messages": {"min": 1}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": messages.min: got replica 0 sent 0 messages in 5 rounds, want >= 1`,
			},
		},
		{
			name: "messages-exact-zero-pass",
			src:  frozenSuite(`[{"messages": {"exact": 0}}]`),
		},
		{
			name: "where-disables",
			src:  frozenSuite(`[{"where": 0, "rounds": {"max": 0}}]`),
		},
		{
			name: "where-expression-in-scope",
			src:  frozenSuite(`[{"where": "n >= 100", "rounds": {"max": 4}}]`),
			want: []string{
				`scenario "frozen": expect[0]: cell 0 (n=100), group "run": rounds.max: got 5, want <= 4`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := decodeT(t, tc.src)
			tbl, report, err := RunChecked(context.Background(), s, quickParams(2))
			if tbl == nil {
				t.Fatalf("RunChecked returned no table (err %v)", err)
			}
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("want pass, got %v", err)
				}
				if report.Err() != nil || len(report.Violations) != 0 {
					t.Fatalf("want clean report, got %+v", report.Violations)
				}
				return
			}
			var verrs ExpectationErrors
			if !errors.As(err, &verrs) {
				t.Fatalf("want ExpectationErrors, got %T: %v", err, err)
			}
			if len(verrs) != len(tc.want) {
				t.Fatalf("got %d violations, want %d:\n%v", len(verrs), len(tc.want), err)
			}
			for i, want := range tc.want {
				if got := verrs[i].Error(); got != want {
					t.Fatalf("violation %d:\n got %s\nwant %s", i, got, want)
				}
			}
		})
	}
}

// TestExpectWinnerPredicates: fixed-color compositions make the winner
// predictable, so label and validity messages are golden too.
func TestExpectWinnerPredicates(t *testing.T) {
	// The whole population holds color 7: converged at round 0, winner 7.
	allSeven := func(expect string) string {
		return `{
			"schema": 1, "name": "unanimous",
			"params": {"n": 50},
			"rule": {"name": "3-majority"},
			"nodes": [{"name": "all", "color": 7}],
			"expect": ` + expect + `
		}`
	}
	s := decodeT(t, allSeven(`[{"winner": {"label": 7}}, {"rounds": {"max": 0}}]`))
	if _, _, err := RunChecked(context.Background(), s, quickParams(1)); err != nil {
		t.Fatalf("unanimous pass: %v", err)
	}
	s = decodeT(t, allSeven(`[{"winner": {"label": 3}}]`))
	_, _, err := RunChecked(context.Background(), s, quickParams(1))
	want := `scenario "unanimous": expect[0]: cell 0 (n=50), group "run": winner.label: got label 3 won 0/1 replicas (0), want >= 1 of replicas winning label 3`
	if err == nil || err.Error() != want {
		t.Fatalf("winner.label:\n got %v\nwant %s", err, want)
	}

	// A corrupted overwhelming majority wins, but its color is invalid.
	corrupted := `{
		"schema": 1, "name": "planted",
		"params": {"n": 100},
		"rule": {"name": "3-majority"},
		"stop": {"max_rounds": "100 * n"},
		"nodes": [
			{"name": "honest", "count": 5, "color": 0},
			{"name": "planted", "color": 1, "corrupted": true}
		],
		"expect": [{"winner": {"valid": true}}]
	}`
	s = decodeT(t, corrupted)
	_, _, err = RunChecked(context.Background(), s, quickParams(1))
	want = `scenario "planted": expect[0]: cell 0 (n=100), group "run": winner.valid: got replica 0 winner 1 has valid=false, want valid=true for every replica`
	if err == nil || err.Error() != want {
		t.Fatalf("winner.valid:\n got %v\nwant %s", err, want)
	}
}

// TestExpectWinnerUniform: a symmetric balanced start passes the
// chi-square uniformity gate; a start where one color always wins fails
// it.
func TestExpectWinnerUniform(t *testing.T) {
	symmetric := `{
		"schema": 1, "name": "symmetric",
		"params": {"n": 200},
		"replicas": 16,
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": 2},
		"stop": {"max_rounds": "100 * n"},
		"expect": [{"winner": {"uniform_alpha": 0.001}}]
	}`
	if _, _, err := RunChecked(context.Background(), decodeT(t, symmetric), quickParams(4)); err != nil {
		t.Fatalf("symmetric start flagged as non-uniform: %v", err)
	}
	skewed := `{
		"schema": 1, "name": "skewed",
		"params": {"n": 200},
		"replicas": 16,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "big", "count": 199, "color": 0, "stubborn": true},
			{"name": "small", "color": 1, "stubborn": true}
		],
		"stop": {"max_rounds": 2},
		"expect": [{"winner": {"uniform_alpha": 0.001}}]
	}`
	_, _, err := RunChecked(context.Background(), decodeT(t, skewed), quickParams(4))
	var verrs ExpectationErrors
	if !errors.As(err, &verrs) || verrs[0].Field != "winner.uniform_alpha" {
		t.Fatalf("always-0 winners passed the uniformity gate: %v", err)
	}
}

// TestExpectComparePredicates: two identical frozen groups are
// statistically indistinguishable and have mean ratio exactly 1.
func TestExpectComparePredicates(t *testing.T) {
	src := func(expect string) string {
		return `{
			"schema": 1, "name": "twins",
			"params": {"n": 100},
			"replicas": 4,
			"engine": "agents",
			"rule": {"name": "3-majority"},
			"stop": {"max_rounds": 5},
			"runs": [
				{"id": "a", "nodes": [
					{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
					{"name": "ones", "color": 1, "stubborn": true}
				]},
				{"id": "b", "nodes": [
					{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
					{"name": "ones", "color": 1, "stubborn": true}
				]}
			],
			"expect": ` + expect + `
		}`
	}
	pass := src(`[{"compare": {"group_a": "a", "group_b": "b",
		"rounds_ks_alpha": 0.001, "winner_chi_alpha": 0.001,
		"max_mean_ratio": 1, "min_mean_ratio": 1}}]`)
	if _, _, err := RunChecked(context.Background(), decodeT(t, pass), quickParams(2)); err != nil {
		t.Fatalf("identical groups flagged: %v", err)
	}
	violated := src(`[{"compare": {"group_a": "a", "group_b": "b", "min_mean_ratio": 2}}]`)
	_, _, err := RunChecked(context.Background(), decodeT(t, violated), quickParams(2))
	want := `scenario "twins": expect[0]: cell 0 (n=100), group "a vs b": compare.min_mean_ratio: got mean(a)/mean(b) = 1, want >= 2`
	if err == nil || err.Error() != want {
		t.Fatalf("compare.min_mean_ratio:\n got %v\nwant %s", err, want)
	}
}

// TestExpectTablePredicate checks the reduced-table predicate on a custom
// scenario — the only predicate form custom scenarios may carry.
func TestExpectTablePredicate(t *testing.T) {
	RegisterAdapter("expect-table-adapter", func(_ context.Context, s *Scenario, p Params) (*Table, error) {
		n, err := s.ParamInt("n", p.Scale)
		if err != nil {
			return nil, err
		}
		tbl := s.NewTable()
		tbl.Columns = []string{"n"}
		tbl.AddRow(n)
		return tbl, nil
	})
	src := func(expect string) string {
		return `{
			"schema": 1, "name": "tabled", "kind": "custom",
			"adapter": "expect-table-adapter",
			"params": {"n": {"quick": 10, "full": 100}},
			"expect": ` + expect + `
		}`
	}
	if _, _, err := RunChecked(context.Background(), decodeT(t, src(`[{"table": {"column": "n", "equals": "n"}}]`)), quickParams(1)); err != nil {
		t.Fatalf("table equals: %v", err)
	}
	_, _, err := RunChecked(context.Background(), decodeT(t, src(`[{"table": {"column": "n", "max": 5}}]`)), quickParams(1))
	want := `scenario "tabled": expect[0]: table row 0: table.max: got column "n" = 10, want <= 5`
	if err == nil || err.Error() != want {
		t.Fatalf("table.max:\n got %v\nwant %s", err, want)
	}
	// A missing column is an evaluation error, not a violation.
	_, report, err := RunChecked(context.Background(), decodeT(t, src(`[{"table": {"column": "nope", "max": 5}}]`)), quickParams(1))
	if err == nil || !strings.Contains(err.Error(), `no column "nope"`) || report != nil {
		t.Fatalf("missing column: err = %v, report = %v", err, report)
	}
}

// TestExpectAggregatesAcrossCells: violations collect across the whole
// sweep instead of stopping at the first failing cell, in deterministic
// cell order.
func TestExpectAggregatesAcrossCells(t *testing.T) {
	src := `{
		"schema": 1, "name": "lattice",
		"params": {"n": 100},
		"sweep": [{"name": "k", "values": [2, 4]}],
		"replicas": 2,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
			{"name": "ones", "color": 1, "stubborn": true}
		],
		"stop": {"max_rounds": 5},
		"expect": [{"rounds": {"max": 4}}]
	}`
	_, report, err := RunChecked(context.Background(), decodeT(t, src), quickParams(2))
	var verrs ExpectationErrors
	if !errors.As(err, &verrs) {
		t.Fatalf("want ExpectationErrors, got %v", err)
	}
	if len(verrs) != 2 || verrs[0].Cell != 0 || verrs[1].Cell != 1 {
		t.Fatalf("want one violation per cell in order, got %v", err)
	}
	if verrs[0].CellVars != "k=2" || verrs[1].CellVars != "k=4" {
		t.Fatalf("cell vars: %q, %q", verrs[0].CellVars, verrs[1].CellVars)
	}
	if !strings.HasPrefix(err.Error(), "2 expectations violated:") {
		t.Fatalf("aggregate header: %v", err)
	}
	if report.Checks != 2 || report.Expectations != 1 {
		t.Fatalf("report counters: %+v", report)
	}
}

// TestExpectGroupScope: a group-scoped expectation only checks its group.
func TestExpectGroupScope(t *testing.T) {
	src := `{
		"schema": 1, "name": "scoped",
		"params": {"n": 100},
		"replicas": 2,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"stop": {"max_rounds": 5},
		"runs": [
			{"id": "frozen", "nodes": [
				{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
				{"name": "ones", "color": 1, "stubborn": true}
			]},
			{"id": "live", "init": {"generator": "balanced", "k": 2},
			 "stop": {"max_rounds": "100 * n"}}
		],
		"expect": [{"group": "live", "converged": {}}]
	}`
	if _, _, err := RunChecked(context.Background(), decodeT(t, src), quickParams(2)); err != nil {
		t.Fatalf("group scope leaked to the frozen group: %v", err)
	}
}

// TestExpectDeterministicAcrossWorkers: the check outcome, including the
// violation order, is independent of the worker count.
func TestExpectDeterministicAcrossWorkers(t *testing.T) {
	src := `{
		"schema": 1, "name": "det-check",
		"params": {"n": 100},
		"sweep": [{"name": "k", "values": [2, 3, 4]}],
		"replicas": 3,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
			{"name": "ones", "color": 1, "stubborn": true}
		],
		"stop": {"max_rounds": 5},
		"expect": [{"rounds": {"max": 4}}, {"converged": {}}]
	}`
	var msgs []string
	for _, workers := range []int{1, 4} {
		s := decodeT(t, src)
		_, _, err := RunChecked(context.Background(), s, quickParams(workers))
		if err == nil {
			t.Fatal("expected violations")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("worker count changed the report:\n1: %s\n4: %s", msgs[0], msgs[1])
	}
}

// TestExpectValidation: malformed expect sections fail decoding with
// field-qualified errors; unknown JSON fields are rejected outright.
func TestExpectValidation(t *testing.T) {
	base := func(expect string) string {
		return `{
			"schema": 1, "name": "v",
			"params": {"n": 50},
			"rule": {"name": "voter"},
			"sweep": [{"name": "mode", "strings": ["x", "y"]}],
			"runs": [{"id": "a"}, {"id": "b"}],
			"expect": ` + expect + `
		}`
	}
	cases := []struct {
		name, src, wantErr string
	}{
		{
			name:    "unknown-field",
			src:     base(`[{"rounds": {"max_meen": 1}}]`),
			wantErr: `unknown field "max_meen"`,
		},
		{
			name:    "no-predicate",
			src:     base(`[{"name": "empty"}]`),
			wantErr: `expect[0]: an expectation needs at least one predicate`,
		},
		{
			name:    "unknown-group",
			src:     base(`[{"group": "nope", "converged": {}}]`),
			wantErr: `expect[0].group: unknown run group "nope"`,
		},
		{
			name:    "match-unknown-axis",
			src:     base(`[{"match": {"engine": "x"}, "converged": {}}]`),
			wantErr: `expect[0].match: "engine" does not name a string sweep axis`,
		},
		{
			name:    "match-unknown-value",
			src:     base(`[{"match": {"mode": "z"}, "converged": {}}]`),
			wantErr: `expect[0].match: axis "mode" has no value "z" (values: x, y)`,
		},
		{
			name:    "table-not-alone",
			src:     base(`[{"table": {"column": "c", "max": 1}, "converged": {}}]`),
			wantErr: `expect[0].table: a table predicate checks the reduced table and stands alone`,
		},
		{
			name:    "table-without-bound",
			src:     base(`[{"table": {"column": "c"}}]`),
			wantErr: `expect[0].table: set at least one of equals, min or max`,
		},
		{
			name:    "rounds-without-bound",
			src:     base(`[{"rounds": {}}]`),
			wantErr: `expect[0].rounds: set at least one bound`,
		},
		{
			name:    "label-fraction-without-label",
			src:     base(`[{"winner": {"label_min_fraction": 0.9}}]`),
			wantErr: `expect[0].winner: set at least one of label, valid or uniform_alpha`,
		},
		{
			name:    "messages-without-bound",
			src:     base(`[{"messages": {}}]`),
			wantErr: `expect[0].messages: set at least one of exact, min or max`,
		},
		{
			name:    "almost-consensus-without-threshold",
			src:     base(`[{"almost_consensus": {}}]`),
			wantErr: `expect[0].almost_consensus.min_fraction: the support threshold is required`,
		},
		{
			name:    "compare-same-group",
			src:     base(`[{"compare": {"group_a": "a", "group_b": "a", "rounds_ks_alpha": 0.001}}]`),
			wantErr: `expect[0].compare: group_a and group_b must differ`,
		},
		{
			name:    "compare-unknown-group",
			src:     base(`[{"compare": {"group_a": "a", "group_b": "c", "rounds_ks_alpha": 0.001}}]`),
			wantErr: `expect[0].compare: unknown run group "c"`,
		},
		{
			name:    "compare-with-expect-group",
			src:     base(`[{"group": "a", "compare": {"group_a": "a", "group_b": "b", "rounds_ks_alpha": 0.001}}]`),
			wantErr: `expect[0].compare: compare names its own groups`,
		},
		{
			name:    "bad-bound-expression",
			src:     base(`[{"rounds": {"max_mean": "3 *"}}]`),
			wantErr: `expect[0].rounds.max_mean`,
		},
		{
			name: "custom-with-result-predicate",
			src: `{"schema": 1, "name": "c", "kind": "custom", "adapter": "x",
				"expect": [{"converged": {}}]}`,
			wantErr: `expect[0]: custom scenarios reduce straight to a table; only table predicates apply`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBytes([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestExpectMatchScopes: a match filter limits the expectation to the
// matching string-axis cells.
func TestExpectMatchScopes(t *testing.T) {
	src := `{
		"schema": 1, "name": "matched",
		"params": {"n": 100},
		"sweep": [{"name": "mode", "strings": ["frozen", "alive"]}],
		"replicas": 2,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "zeros", "count": 60, "color": 0, "stubborn": true},
			{"name": "ones", "color": 1, "stubborn": true}
		],
		"stop": {"max_rounds": 5},
		"expect": [{"match": {"mode": "frozen"}, "rounds": {"max": 4}}]
	}`
	_, _, err := RunChecked(context.Background(), decodeT(t, src), quickParams(2))
	var verrs ExpectationErrors
	if !errors.As(err, &verrs) || len(verrs) != 1 {
		t.Fatalf("want exactly the matching cell to fail, got %v", err)
	}
	if verrs[0].CellVars != "mode=frozen" {
		t.Fatalf("cell vars: %q", verrs[0].CellVars)
	}
}
