package scenario

import (
	"fmt"

	"github.com/ignorecomply/consensus/internal/config"
	"github.com/ignorecomply/consensus/internal/rng"
	"github.com/ignorecomply/consensus/internal/rules"
)

// NodeGroupSpec describes one named subset of a run's population. A nodes
// section replaces the init section: the groups together define the whole
// start configuration, and may additionally override behavior per group —
// a different rule (degree), a fixed dissenter (stubborn), a late-joining
// group (join_round), or an adversarially planted subset (corrupted,
// which removes the group's exclusive colors from the §5 validity set).
//
// Groups share one global color space: a fixed "color" picks a concrete
// label, and a generator-based group emits labels 0..k-1 shifted by
// "color_offset" — so two groups agree on a color by using the same label
// and get disjoint opinion spaces by offsetting.
//
// Behavior overrides (rule, stubborn, join_round) run on the agents
// engine only; pure composition (counts, colors, corrupted) works on
// every engine.
type NodeGroupSpec struct {
	// Name identifies the group (lowercase slug; unique within the run).
	Name string `json:"name"`
	// Count is the group's node count; exactly one group may omit it and
	// takes the remainder of n. Counts must sum to n.
	Count Quantity `json:"count,omitempty"`
	// Color assigns every node of the group this fixed initial color
	// label (mutually exclusive with init).
	Color Quantity `json:"color,omitempty"`
	// Init generates the group's initial opinions over its count nodes
	// (mutually exclusive with color); k defaults to the group's count.
	Init *InitSpec `json:"init,omitempty"`
	// ColorOffset shifts the labels a generator-based group emits
	// (init-based groups only).
	ColorOffset Quantity `json:"color_offset,omitempty"`
	// Rule overrides the run's rule for this group (agents engine only).
	Rule *RuleSpec `json:"rule,omitempty"`
	// Stubborn nodes never update: they keep their initial opinion for
	// the whole run (agents engine only).
	Stubborn bool `json:"stubborn,omitempty"`
	// JoinRound is the first round in which the group participates;
	// before it the group holds its initial opinion (agents engine only).
	JoinRound Quantity `json:"join_round,omitempty"`
	// Corrupted marks the group's initial opinions as adversarially
	// planted: colors supported only by corrupted groups are excluded
	// from the §5 validity set, so a run won by one reports an invalid
	// winner.
	Corrupted bool `json:"corrupted,omitempty"`
}

// hasBehavior reports whether the group overrides per-node behavior
// (which restricts the run to the agents engine).
func (g *NodeGroupSpec) hasBehavior() bool {
	return g.Rule != nil || g.Stubborn || g.JoinRound.IsSet()
}

// nodesNeedBehaviors reports whether any group in a nodes section
// overrides behavior.
func nodesNeedBehaviors(groups []NodeGroupSpec) bool {
	for i := range groups {
		if groups[i].hasBehavior() {
			return true
		}
	}
	return false
}

// nodesNeedRNG reports whether any group's generator draws randomness.
func nodesNeedRNG(groups []ResolvedNodeGroup) bool {
	for i := range groups {
		if groups[i].Init != nil && config.NeedsRNG(groups[i].Init.Generator) {
			return true
		}
	}
	return false
}

// validateNodes checks a nodes section; path is the owning section's
// prefix ("run defaults" or "runs[i]").
func (s *Scenario) validateNodes(groups []NodeGroupSpec, path string) error {
	fail := func(sub, format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s.%s: %s", s.Name, path, sub, fmt.Sprintf(format, args...))
	}
	seen := map[string]bool{}
	uncounted := -1
	for i := range groups {
		g := &groups[i]
		gpath := fmt.Sprintf("nodes[%d]", i)
		if !validName(g.Name) {
			return fail(gpath+".name", "group name %q must be a lowercase slug (letters, digits, dashes)", g.Name)
		}
		if seen[g.Name] {
			return fail(gpath+".name", "duplicate group name %q", g.Name)
		}
		seen[g.Name] = true
		if !g.Count.IsSet() {
			if uncounted >= 0 {
				return fail(gpath+".count", "at most one group may omit count (the remainder of n); nodes[%d] already does", uncounted)
			}
			uncounted = i
		}
		if g.Color.IsSet() == (g.Init != nil) {
			return fail(gpath, "a group needs exactly one of color (a fixed label) or init (a generator over its nodes)")
		}
		if g.ColorOffset.IsSet() && g.Init == nil {
			return fail(gpath+".color_offset", "color_offset shifts generator labels; this group has a fixed color")
		}
		if g.Init != nil {
			if !config.KnownGenerator(g.Init.Generator) {
				return fail(gpath+".init.generator", "unknown generator %q", g.Init.Generator)
			}
			for _, f := range []quantityField{
				{gpath + ".init.k", &g.Init.K}, {gpath + ".init.bias", &g.Init.Bias},
				{gpath + ".init.a", &g.Init.A}, {gpath + ".init.max_support", &g.Init.MaxSupport},
				{gpath + ".init.s", &g.Init.S},
			} {
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
		}
		if g.Rule != nil {
			if _, err := (rules.Spec{Name: g.Rule.Name, H: 1}).Factory(); err != nil {
				return fail(gpath+".rule.name", "%v", err)
			}
			if g.Rule.H.IsSet() && g.Rule.Name != "h-majority" {
				return fail(gpath+".rule.h", "h only applies to the canonical \"h-majority\" rule; %q fixes h in its name", g.Rule.Name)
			}
			if g.Rule.Beta.IsSet() && g.Rule.Name != "lazy-voter" {
				return fail(gpath+".rule.beta", "beta only applies to the \"lazy-voter\" rule, not %q", g.Rule.Name)
			}
			if err := g.Rule.H.compile(path + "." + gpath + ".rule.h"); err != nil {
				return fmt.Errorf("scenario %q: %w", s.Name, err)
			}
			if err := g.Rule.Beta.compile(path + "." + gpath + ".rule.beta"); err != nil {
				return fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
		if g.Stubborn && g.Rule != nil {
			return fail(gpath, "a stubborn group never updates; drop its rule override")
		}
		if g.Stubborn && g.JoinRound.IsSet() {
			return fail(gpath, "a stubborn group never updates; drop its join_round")
		}
		for _, f := range []quantityField{
			{gpath + ".count", &g.Count}, {gpath + ".color", &g.Color},
			{gpath + ".color_offset", &g.ColorOffset}, {gpath + ".join_round", &g.JoinRound},
		} {
			if err := f.q.compile(path + "." + f.sub); err != nil {
				return fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
	}
	return nil
}

// ResolvedNodeGroup is a node group with concrete parameters.
type ResolvedNodeGroup struct {
	Name        string
	Count       int
	HasColor    bool
	Color       int
	ColorOffset int
	Init        *ResolvedInit // generator groups (HasColor false)
	Rule        *ResolvedRule // nil: the run's own rule
	Stubborn    bool
	JoinRound   int
	Corrupted   bool
}

// hasBehavior mirrors NodeGroupSpec.hasBehavior on the resolved form.
func (g *ResolvedNodeGroup) hasBehavior() bool {
	return g.Rule != nil || g.Stubborn || g.JoinRound > 0
}

// resolveNodes evaluates a nodes section against a cell's bindings. The
// single-group normalization lives here: one generator-based group with
// no behavior overrides covering all n nodes *is* the homogeneous init,
// so it collapses to (nil, init) — which makes "a homogeneous population
// expressed as one node group" bit-exact against the ungrouped expansion
// by construction.
func resolveNodes(groups []NodeGroupSpec, scale Scale, n int, env map[string]float64) ([]ResolvedNodeGroup, *ResolvedInit, error) {
	out := make([]ResolvedNodeGroup, len(groups))
	counted := 0
	uncounted := -1
	for i := range groups {
		g := &groups[i]
		rg := &out[i]
		rg.Name = g.Name
		rg.Stubborn = g.Stubborn
		rg.Corrupted = g.Corrupted
		var err error
		path := func(sub string) string { return fmt.Sprintf("nodes[%d].%s", i, sub) }
		if g.Count.IsSet() {
			if rg.Count, err = evalIntOr(&g.Count, scale, env, 0, path("count")); err != nil {
				return nil, nil, err
			}
			if rg.Count < 1 {
				return nil, nil, fmt.Errorf("%s: must be >= 1, got %d", path("count"), rg.Count)
			}
			counted += rg.Count
		} else {
			uncounted = i
		}
		if g.Color.IsSet() {
			rg.HasColor = true
			if rg.Color, err = evalIntOr(&g.Color, scale, env, 0, path("color")); err != nil {
				return nil, nil, err
			}
			if rg.Color < 0 {
				return nil, nil, fmt.Errorf("%s: must be >= 0, got %d", path("color"), rg.Color)
			}
		}
		if rg.ColorOffset, err = evalIntOr(&g.ColorOffset, scale, env, 0, path("color_offset")); err != nil {
			return nil, nil, err
		}
		if rg.ColorOffset < 0 {
			return nil, nil, fmt.Errorf("%s: must be >= 0, got %d", path("color_offset"), rg.ColorOffset)
		}
		if rg.JoinRound, err = evalIntOr(&g.JoinRound, scale, env, 0, path("join_round")); err != nil {
			return nil, nil, err
		}
		if rg.JoinRound < 0 {
			return nil, nil, fmt.Errorf("%s: must be >= 0, got %d", path("join_round"), rg.JoinRound)
		}
	}
	if uncounted >= 0 {
		rem := n - counted
		if rem < 1 {
			return nil, nil, fmt.Errorf("nodes[%d].count: the remainder is %d (the other groups already hold %d of n=%d nodes)", uncounted, rem, counted, n)
		}
		out[uncounted].Count = rem
	} else if counted != n {
		return nil, nil, fmt.Errorf("nodes: group counts sum to %d, want n = %d", counted, n)
	}
	// Init sections need the final counts (k defaults to the group count).
	for i := range groups {
		g := &groups[i]
		if g.Init == nil {
			continue
		}
		rg := &out[i]
		path := func(sub string) string { return fmt.Sprintf("nodes[%d].init.%s", i, sub) }
		init := &ResolvedInit{Generator: g.Init.Generator}
		var err error
		if init.K, err = evalIntOr(&g.Init.K, scale, env, rg.Count, path("k")); err != nil {
			return nil, nil, err
		}
		if init.Bias, err = evalIntOr(&g.Init.Bias, scale, env, 0, path("bias")); err != nil {
			return nil, nil, err
		}
		if init.A, err = evalIntOr(&g.Init.A, scale, env, 0, path("a")); err != nil {
			return nil, nil, err
		}
		if init.MaxSupport, err = evalIntOr(&g.Init.MaxSupport, scale, env, 0, path("max_support")); err != nil {
			return nil, nil, err
		}
		if init.S, err = evalFloatOr(&g.Init.S, scale, env, 1, path("s")); err != nil {
			return nil, nil, err
		}
		rg.Init = init
	}
	// Rule overrides.
	for i := range groups {
		g := &groups[i]
		if g.Rule == nil {
			continue
		}
		rg := &out[i]
		rule := &ResolvedRule{Name: g.Rule.Name}
		var err error
		path := func(sub string) string { return fmt.Sprintf("nodes[%d].rule.%s", i, sub) }
		if rule.H, err = evalIntOr(&g.Rule.H, scale, env, 0, path("h")); err != nil {
			return nil, nil, err
		}
		if rule.Beta, err = evalFloatOr(&g.Rule.Beta, scale, env, 0, path("beta")); err != nil {
			return nil, nil, err
		}
		if rule.Name == "h-majority" && rule.H < 1 {
			return nil, nil, fmt.Errorf("%s: h-majority needs h >= 1 (set rule.h)", path("h"))
		}
		rg.Rule = rule
	}
	// Single-group normalization: one plain generator group covering the
	// whole population is the homogeneous case.
	if len(out) == 1 && !out[0].hasBehavior() && !out[0].Corrupted &&
		!out[0].HasColor && out[0].ColorOffset == 0 && out[0].Init != nil {
		return nil, out[0].Init, nil
	}
	return out, nil, nil
}

// groupedStart is the extra state of a heterogeneous start configuration:
// the per-node group assignment (aligned with start.Nodes() order: slot
// blocks in slot order, group contributions within a slot in group
// order), and the labels supported only by corrupted groups.
type groupedStart struct {
	assign  []int
	invalid []int
}

// buildGroupedStart composes the start configuration of a heterogeneous
// run and its per-node group assignment.
//
// Determinism contract: when genRNG is non-nil, each group whose
// generator draws randomness gets its own stream via genRNG.Derive(gi),
// derived in group order on the calling goroutine — the same pre-derived
// stream discipline as replica streams, so the start is a pure function
// of (spec, seed) regardless of scheduling.
func buildGroupedStart(spec *RunSpec, genRNG *rng.RNG) (*config.Config, *groupedStart, error) {
	type slotInfo struct {
		label   int
		honest  int
		corrupt int
		contrib []int // per-group contribution to this slot
	}
	var slots []slotInfo
	slotOf := map[int]int{}
	groups := spec.Nodes
	addContrib := func(gi, label, count int) {
		si, ok := slotOf[label]
		if !ok {
			si = len(slots)
			slotOf[label] = si
			slots = append(slots, slotInfo{label: label, contrib: make([]int, len(groups))})
		}
		slots[si].contrib[gi] += count
		if groups[gi].Corrupted {
			slots[si].corrupt += count
		} else {
			slots[si].honest += count
		}
	}
	for gi := range groups {
		g := &groups[gi]
		if g.HasColor {
			addContrib(gi, g.Color, g.Count)
			continue
		}
		var stream *rng.RNG
		if config.NeedsRNG(g.Init.Generator) {
			if genRNG == nil {
				return nil, nil, fmt.Errorf("nodes[%d]: generator %q needs randomness but no generator stream was derived", gi, g.Init.Generator)
			}
			stream = genRNG.Derive(uint64(gi))
		}
		sub, err := config.Generate(g.Init.Generator, config.GenArgs{
			N: g.Count, K: g.Init.K, Bias: g.Init.Bias, A: g.Init.A,
			MaxSupport: g.Init.MaxSupport, S: g.Init.S, RNG: stream,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("nodes[%d] (%s): %w", gi, g.Name, err)
		}
		for s := 0; s < sub.Slots(); s++ {
			if sub.Count(s) > 0 {
				addContrib(gi, sub.Label(s)+g.ColorOffset, sub.Count(s))
			}
		}
	}

	counts := make([]int, len(slots))
	labels := make([]int, len(slots))
	var invalid []int
	for si, sl := range slots {
		counts[si] = sl.honest + sl.corrupt
		labels[si] = sl.label
		if sl.corrupt > 0 && sl.honest == 0 {
			invalid = append(invalid, sl.label)
		}
	}
	merged, err := config.NewLabeled(counts, labels)
	if err != nil {
		return nil, nil, fmt.Errorf("nodes: %w", err)
	}
	assign := make([]int, 0, spec.N)
	for _, sl := range slots {
		for gi, c := range sl.contrib {
			for i := 0; i < c; i++ {
				assign = append(assign, gi)
			}
		}
	}
	return merged, &groupedStart{assign: assign, invalid: invalid}, nil
}
