package scenario

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/ignorecomply/consensus/internal/rules"
	"github.com/ignorecomply/consensus/internal/sim"
	"github.com/ignorecomply/consensus/internal/stats"
)

// ExpectSpec is one self-verification assertion of a scenario: a scope
// (which cells and run groups it applies to) plus one or more predicates
// over the executed results. Bounds are quantities, so they may be
// expressions over the cell's bindings — "3 * k * log(n)" asserts the
// paper's Θ(k log n) convergence law cell by cell.
//
// A checked run (RunChecked, consensus-sim -check) evaluates every
// expectation against every in-scope cell × group and aggregates all
// violations instead of stopping at the first, so one report shows the
// whole failure surface.
type ExpectSpec struct {
	// Name labels the expectation in reports (free text, optional).
	Name string `json:"name,omitempty"`
	// Group restricts the expectation to one run group (default: all).
	Group string `json:"group,omitempty"`
	// Where gates the expectation per cell: it is evaluated against the
	// cell's bindings and the cell is in scope iff the value is nonzero.
	// A per-scale quantity whose branch is 0 disables the expectation at
	// that scale.
	Where Quantity `json:"where,omitempty"`
	// Match restricts the expectation to cells whose string-axis bindings
	// equal the given values.
	Match map[string]string `json:"match,omitempty"`

	// Rounds bounds the convergence-round distribution.
	Rounds *RoundsExpect `json:"rounds,omitempty"`
	// Converged bounds the fraction of converged replicas.
	Converged *ConvergedExpect `json:"converged,omitempty"`
	// Winner constrains the winner distribution.
	Winner *WinnerExpect `json:"winner,omitempty"`
	// Messages bounds the per-replica message totals (cluster engine).
	Messages *MessagesExpect `json:"messages,omitempty"`
	// AlmostConsensus bounds the final support of the plurality color.
	AlmostConsensus *AlmostConsensusExpect `json:"almost_consensus,omitempty"`
	// Compare relates two run groups of the same cell statistically.
	Compare *CompareExpect `json:"compare,omitempty"`
	// Table checks a column of the reduced table (the only predicate a
	// custom-kind scenario can carry, and always the whole expectation).
	Table *TableExpect `json:"table,omitempty"`
}

// RoundsExpect bounds the round counts of a cell × group's replicas.
type RoundsExpect struct {
	// MaxMean / MinMean bound the mean round count.
	MaxMean Quantity `json:"max_mean,omitempty"`
	MinMean Quantity `json:"min_mean,omitempty"`
	// MaxQ95 bounds the 95th percentile.
	MaxQ95 Quantity `json:"max_q95,omitempty"`
	// Max / Min bound every individual replica.
	Max Quantity `json:"max,omitempty"`
	Min Quantity `json:"min,omitempty"`
}

// ConvergedExpect bounds the converged fraction of a cell × group.
type ConvergedExpect struct {
	// MinFraction is the least acceptable converged fraction (default 1:
	// every replica must converge).
	MinFraction Quantity `json:"min_fraction,omitempty"`
}

// WinnerExpect constrains the winner distribution of a cell × group.
type WinnerExpect struct {
	// Label, when set, requires replicas to elect this color.
	Label Quantity `json:"label,omitempty"`
	// LabelMinFraction is the least fraction of replicas that must elect
	// Label (default 1; requires Label).
	LabelMinFraction Quantity `json:"label_min_fraction,omitempty"`
	// Valid, when set, requires every replica's winner validity flag
	// (§5 Byzantine validity) to equal it.
	Valid *bool `json:"valid,omitempty"`
	// UniformAlpha runs a chi-square goodness-of-fit test of the winner
	// tallies against the uniform distribution over the start colors and
	// fails when p < alpha — the paper's symmetry claim: from a balanced
	// start every color wins equally often.
	UniformAlpha Quantity `json:"uniform_alpha,omitempty"`
}

// MessagesExpect bounds per-replica message totals. Bound expressions see
// two extra bindings per replica: "rounds" (that replica's round count)
// and "h" (the rule's per-round sample count), so the cluster engine's
// exact law is expressible as {"exact": "2 * n * h * rounds"}.
type MessagesExpect struct {
	Exact Quantity `json:"exact,omitempty"`
	Min   Quantity `json:"min,omitempty"`
	Max   Quantity `json:"max,omitempty"`
}

// AlmostConsensusExpect bounds the plurality color's final support.
type AlmostConsensusExpect struct {
	// MinFraction is the least acceptable final support fraction of the
	// plurality color, checked on every replica.
	MinFraction Quantity `json:"min_fraction"`
	// MaxRound bounds the round by which that support was reached: the
	// adversarial almost-consensus round when the run recorded one,
	// otherwise the run's round count.
	MaxRound Quantity `json:"max_round,omitempty"`
}

// CompareExpect relates two run groups of the same cell. GroupB is the
// baseline: mean ratios are mean(A)/mean(B).
type CompareExpect struct {
	GroupA string `json:"group_a"`
	GroupB string `json:"group_b"`
	// RoundsKSAlpha requires the two round distributions to be
	// KS-indistinguishable at this level.
	RoundsKSAlpha Quantity `json:"rounds_ks_alpha,omitempty"`
	// WinnerChiAlpha requires the two winner tallies to be chi-square
	// homogeneous at this level.
	WinnerChiAlpha Quantity `json:"winner_chi_alpha,omitempty"`
	// MaxMeanRatio / MinMeanRatio bound mean(A)/mean(B).
	MaxMeanRatio Quantity `json:"max_mean_ratio,omitempty"`
	MinMeanRatio Quantity `json:"min_mean_ratio,omitempty"`
}

// TableExpect checks one column of the reduced table on every row. Bound
// expressions see the scenario's params as bindings.
type TableExpect struct {
	// Column is the checked column's name.
	Column string `json:"column"`
	// Rows restricts the check to these 0-based row indices; empty means
	// every row. Use it when a column mixes numbers with markers like "-".
	Rows   []int    `json:"rows,omitempty"`
	Equals Quantity `json:"equals,omitempty"`
	Min    Quantity `json:"min,omitempty"`
	Max    Quantity `json:"max,omitempty"`
}

// predicateCount returns how many predicate sections the expectation
// carries.
func (e *ExpectSpec) predicateCount() int {
	n := 0
	for _, set := range []bool{
		e.Rounds != nil, e.Converged != nil, e.Winner != nil,
		e.Messages != nil, e.AlmostConsensus != nil, e.Compare != nil,
		e.Table != nil,
	} {
		if set {
			n++
		}
	}
	return n
}

// validateExpects checks the expect section; called from Validate.
func (s *Scenario) validateExpects() error {
	fail := func(path, format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s: %s", s.Name, path, fmt.Sprintf(format, args...))
	}
	var groupIDs map[string]bool
	if s.Kind != KindCustom {
		groupIDs = map[string]bool{}
		for _, g := range s.effectiveGroups() {
			groupIDs[g.ID] = true
		}
	}
	for i := range s.Expect {
		e := &s.Expect[i]
		path := fmt.Sprintf("expect[%d]", i)
		if e.predicateCount() == 0 {
			return fail(path, "an expectation needs at least one predicate (rounds, converged, winner, messages, almost_consensus, compare or table)")
		}
		if e.Table != nil {
			if e.predicateCount() > 1 {
				return fail(path+".table", "a table predicate checks the reduced table and stands alone; move the result predicates to their own expectation")
			}
			if e.Group != "" || len(e.Match) > 0 || e.Where.IsSet() {
				return fail(path+".table", "a table predicate checks reduced rows, not cells; drop group/match/where")
			}
			if e.Table.Column == "" {
				return fail(path+".table.column", "the checked column name is required")
			}
			if !e.Table.Equals.IsSet() && !e.Table.Min.IsSet() && !e.Table.Max.IsSet() {
				return fail(path+".table", "set at least one of equals, min or max")
			}
			for ri, r := range e.Table.Rows {
				if r < 0 {
					return fail(fmt.Sprintf("%s.table.rows[%d]", path, ri),
						fmt.Sprintf("row index %d must be >= 0", r))
				}
			}
			for _, f := range []quantityField{
				{"table.equals", &e.Table.Equals}, {"table.min", &e.Table.Min}, {"table.max", &e.Table.Max},
			} {
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
			continue
		}
		if s.Kind == KindCustom {
			return fail(path, "custom scenarios reduce straight to a table; only table predicates apply")
		}
		if e.Group != "" && !groupIDs[e.Group] {
			return fail(path+".group", "unknown run group %q", e.Group)
		}
		if err := e.Where.compile(path + ".where"); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		matchKeys := make([]string, 0, len(e.Match))
		for k := range e.Match {
			matchKeys = append(matchKeys, k)
		}
		sort.Strings(matchKeys)
		for _, k := range matchKeys {
			ax := s.stringAxis(k)
			if ax == nil {
				return fail(path+".match", "%q does not name a string sweep axis", k)
			}
			found := false
			for _, sv := range ax.Strings {
				if sv == e.Match[k] {
					found = true
					break
				}
			}
			if !found {
				return fail(path+".match", "axis %q has no value %q (values: %s)", k, e.Match[k], strings.Join(ax.Strings, ", "))
			}
		}
		if e.Rounds != nil {
			fields := []quantityField{
				{"rounds.max_mean", &e.Rounds.MaxMean}, {"rounds.min_mean", &e.Rounds.MinMean},
				{"rounds.max_q95", &e.Rounds.MaxQ95}, {"rounds.max", &e.Rounds.Max}, {"rounds.min", &e.Rounds.Min},
			}
			any := false
			for _, f := range fields {
				if f.q.IsSet() {
					any = true
				}
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
			if !any {
				return fail(path+".rounds", "set at least one bound (max_mean, min_mean, max_q95, max or min)")
			}
		}
		if e.Converged != nil {
			if err := e.Converged.MinFraction.compile(path + ".converged.min_fraction"); err != nil {
				return fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
		if e.Winner != nil {
			if !e.Winner.Label.IsSet() && e.Winner.Valid == nil && !e.Winner.UniformAlpha.IsSet() {
				return fail(path+".winner", "set at least one of label, valid or uniform_alpha")
			}
			if e.Winner.LabelMinFraction.IsSet() && !e.Winner.Label.IsSet() {
				return fail(path+".winner.label_min_fraction", "only meaningful together with winner.label")
			}
			for _, f := range []quantityField{
				{"winner.label", &e.Winner.Label}, {"winner.label_min_fraction", &e.Winner.LabelMinFraction},
				{"winner.uniform_alpha", &e.Winner.UniformAlpha},
			} {
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
		}
		if e.Messages != nil {
			if !e.Messages.Exact.IsSet() && !e.Messages.Min.IsSet() && !e.Messages.Max.IsSet() {
				return fail(path+".messages", "set at least one of exact, min or max")
			}
			for _, f := range []quantityField{
				{"messages.exact", &e.Messages.Exact}, {"messages.min", &e.Messages.Min}, {"messages.max", &e.Messages.Max},
			} {
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
		}
		if e.AlmostConsensus != nil {
			if !e.AlmostConsensus.MinFraction.IsSet() {
				return fail(path+".almost_consensus.min_fraction", "the support threshold is required")
			}
			for _, f := range []quantityField{
				{"almost_consensus.min_fraction", &e.AlmostConsensus.MinFraction},
				{"almost_consensus.max_round", &e.AlmostConsensus.MaxRound},
			} {
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
		}
		if e.Compare != nil {
			if e.Group != "" {
				return fail(path+".compare", "compare names its own groups (group_a, group_b); drop the expectation-level group")
			}
			if e.Compare.GroupA == "" || e.Compare.GroupB == "" {
				return fail(path+".compare", "group_a and group_b are required")
			}
			if e.Compare.GroupA == e.Compare.GroupB {
				return fail(path+".compare", "group_a and group_b must differ")
			}
			for _, g := range []string{e.Compare.GroupA, e.Compare.GroupB} {
				if !groupIDs[g] {
					return fail(path+".compare", "unknown run group %q", g)
				}
			}
			fields := []quantityField{
				{"compare.rounds_ks_alpha", &e.Compare.RoundsKSAlpha},
				{"compare.winner_chi_alpha", &e.Compare.WinnerChiAlpha},
				{"compare.max_mean_ratio", &e.Compare.MaxMeanRatio},
				{"compare.min_mean_ratio", &e.Compare.MinMeanRatio},
			}
			any := false
			for _, f := range fields {
				if f.q.IsSet() {
					any = true
				}
				if err := f.q.compile(path + "." + f.sub); err != nil {
					return fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
			if !any {
				return fail(path+".compare", "set at least one comparison (rounds_ks_alpha, winner_chi_alpha, max_mean_ratio or min_mean_ratio)")
			}
		}
	}
	return nil
}

// ExpectationError is one violated expectation, located down to the sweep
// cell, run group and predicate field.
type ExpectationError struct {
	// Scenario is the scenario name.
	Scenario string `json:"scenario"`
	// Expect is the violated expectation's index; Name its label, if any.
	Expect int    `json:"expect"`
	Name   string `json:"name,omitempty"`
	// Cell is the sweep cell index (-1 for table-level violations);
	// CellVars renders the cell's sweep bindings for the report.
	Cell     int    `json:"cell"`
	CellVars string `json:"cell_vars,omitempty"`
	// Row is the table row index (table-level violations only, else -1).
	Row int `json:"row"`
	// Group is the run group's display id (cell-level violations).
	Group string `json:"group,omitempty"`
	// Field is the violated predicate field, expectation-relative (e.g.
	// "rounds.max_mean").
	Field string `json:"field"`
	// Got and Want describe the violation.
	Got  string `json:"got"`
	Want string `json:"want"`
}

// Error implements error with a field-qualified, decode-error-style
// message.
func (e *ExpectationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q: expect[%d]", e.Scenario, e.Expect)
	if e.Name != "" {
		fmt.Fprintf(&b, " (%s)", e.Name)
	}
	switch {
	case e.Cell >= 0:
		fmt.Fprintf(&b, ": cell %d", e.Cell)
		if e.CellVars != "" {
			fmt.Fprintf(&b, " (%s)", e.CellVars)
		}
		if e.Group != "" {
			fmt.Fprintf(&b, ", group %q", e.Group)
		}
	case e.Row >= 0:
		fmt.Fprintf(&b, ": table row %d", e.Row)
	}
	fmt.Fprintf(&b, ": %s: got %s, want %s", e.Field, e.Got, e.Want)
	return b.String()
}

// ExpectationErrors aggregates every violation of a checked run into one
// error: evaluation never stops at the first failing cell.
type ExpectationErrors []*ExpectationError

// Error implements error.
func (es ExpectationErrors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d expectations violated:", len(es))
	for _, e := range es {
		b.WriteString("\n  ")
		b.WriteString(e.Error())
	}
	return b.String()
}

// ExpectReport is the machine-readable outcome of evaluating a scenario's
// expectations (the -check-report artifact).
type ExpectReport struct {
	// Scenario, Scale and Seed identify the checked run.
	Scenario string `json:"scenario"`
	Scale    string `json:"scale"`
	Seed     uint64 `json:"seed"`
	// Expectations is the number of expect blocks in the spec; Checks the
	// number of (expectation, scope) evaluations performed.
	Expectations int `json:"expectations"`
	Checks       int `json:"checks"`
	// Violations are the violated expectations, in deterministic
	// evaluation order (expectations, then cells, then groups).
	Violations []*ExpectationError `json:"violations"`
}

// Err returns the report's violations as a typed error, or nil when every
// check passed.
func (r *ExpectReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return ExpectationErrors(r.Violations)
}

// formatNum renders a bound or measurement compactly.
func formatNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderCellVars renders a cell's sweep-axis bindings in axis order (the
// constants — params, derived — are the same in every cell, so only the
// axes locate it). A sweep-less suite falls back to the n binding.
func renderCellVars(s *Scenario, cell *CellResult) string {
	var parts []string
	for i := range s.Sweep {
		ax := &s.Sweep[i]
		if len(ax.Strings) > 0 {
			if v, ok := cell.Strings[ax.Name]; ok {
				parts = append(parts, fmt.Sprintf("%s=%s", ax.Name, v))
			}
			continue
		}
		if v, ok := cell.Vars[ax.Name]; ok {
			parts = append(parts, fmt.Sprintf("%s=%s", ax.Name, formatNum(v)))
		}
	}
	if len(parts) == 0 {
		if v, ok := cell.Vars["n"]; ok {
			return "n=" + formatNum(v)
		}
		return ""
	}
	return strings.Join(parts, ", ")
}

// expectEval carries the state of one evaluation pass.
type expectEval struct {
	s      *Scenario
	suite  *SuiteResult
	tbl    *Table
	p      Params
	report *ExpectReport
}

// EvaluateExpectations checks every expect block of the scenario against
// an executed suite and its reduced table. The returned error reports
// evaluation problems (bad bounds, missing columns, zero-match scopes) —
// *violations* live in the report, retrievable as a typed error via
// (*ExpectReport).Err(). Evaluation is deterministic: expectations in spec
// order, cells in expansion order, groups in spec order; a fixed seed
// yields the identical report whatever the worker count.
//
//consensus:strictwalk
func EvaluateExpectations(s *Scenario, suite *SuiteResult, tbl *Table, p Params) (*ExpectReport, error) {
	ev := &expectEval{
		s: s, suite: suite, tbl: tbl, p: p,
		report: &ExpectReport{
			Scenario:     s.Name,
			Scale:        p.Scale.String(),
			Seed:         p.Seed,
			Expectations: len(s.Expect),
			Violations:   []*ExpectationError{},
		},
	}
	for i := range s.Expect {
		e := &s.Expect[i]
		if e.Table != nil {
			if err := ev.evalTable(i, e); err != nil {
				return nil, err
			}
			continue
		}
		if suite == nil {
			return nil, fmt.Errorf("scenario %q: expect[%d]: no suite to evaluate result predicates against", s.Name, i)
		}
		matched := 0
		for _, cell := range suite.Cells {
			inScope, err := ev.cellInScope(i, e, cell)
			if err != nil {
				return nil, err
			}
			if !inScope {
				continue
			}
			matched++
			if e.Compare != nil {
				if err := ev.evalCompare(i, e, cell); err != nil {
					return nil, err
				}
			}
			for _, g := range cell.Groups {
				if e.Group != "" && g.ID != e.Group {
					continue
				}
				if err := ev.evalGroup(i, e, cell, g); err != nil {
					return nil, err
				}
			}
		}
		if matched == 0 && !e.Where.IsSet() {
			return nil, fmt.Errorf("scenario %q: expect[%d]: matched no cells", s.Name, i)
		}
	}
	return ev.report, nil
}

// cellInScope applies the expectation's match and where filters.
func (ev *expectEval) cellInScope(i int, e *ExpectSpec, cell *CellResult) (bool, error) {
	for k, v := range e.Match {
		if cell.Strings[k] != v {
			return false, nil
		}
	}
	if e.Where.IsSet() {
		v, err := e.Where.Eval(ev.p.Scale, cell.Vars)
		if err != nil {
			return false, fmt.Errorf("scenario %q: expect[%d].where: cell %d: %w", ev.s.Name, i, cell.Index, err)
		}
		if v == 0 {
			return false, nil
		}
	}
	return true, nil
}

// violate appends one violation.
func (ev *expectEval) violate(i int, e *ExpectSpec, cell *CellResult, row int, group, field, got, want string) {
	v := &ExpectationError{
		Scenario: ev.s.Name, Expect: i, Name: e.Name,
		Cell: -1, Row: row, Group: group, Field: field, Got: got, Want: want,
	}
	if cell != nil {
		v.Cell = cell.Index
		v.CellVars = renderCellVars(ev.s, cell)
	}
	ev.report.Violations = append(ev.report.Violations, v)
}

// bound evaluates one bound quantity against a cell's bindings.
func (ev *expectEval) bound(i int, field string, q *Quantity, env map[string]float64, cellIdx int) (float64, error) {
	v, err := q.Eval(ev.p.Scale, env)
	if err != nil {
		return 0, fmt.Errorf("scenario %q: expect[%d].%s: cell %d: %w", ev.s.Name, i, field, cellIdx, err)
	}
	return v, nil
}

// evalGroup checks every per-group predicate of one expectation against
// one cell × group. Per predicate field it reports at most the first
// offending replica (the report stays readable); across cells and groups
// everything aggregates.
func (ev *expectEval) evalGroup(i int, e *ExpectSpec, cell *CellResult, g *GroupResult) error {
	ev.report.Checks++
	env := cell.Vars
	if e.Rounds != nil {
		rs := sim.Rounds(g.Results)
		sum := stats.Summarize(rs)
		checks := []struct {
			field string
			q     *Quantity
			got   float64
			ok    func(got, want float64) bool
			rel   string
		}{
			{"rounds.max_mean", &e.Rounds.MaxMean, sum.Mean, func(g, w float64) bool { return g <= w }, "<="},
			{"rounds.min_mean", &e.Rounds.MinMean, sum.Mean, func(g, w float64) bool { return g >= w }, ">="},
			{"rounds.max_q95", &e.Rounds.MaxQ95, sum.Q95, func(g, w float64) bool { return g <= w }, "<="},
			{"rounds.max", &e.Rounds.Max, sum.Max, func(g, w float64) bool { return g <= w }, "<="},
			{"rounds.min", &e.Rounds.Min, sum.Min, func(g, w float64) bool { return g >= w }, ">="},
		}
		for _, c := range checks {
			if !c.q.IsSet() {
				continue
			}
			want, err := ev.bound(i, c.field, c.q, env, cell.Index)
			if err != nil {
				return err
			}
			if !c.ok(c.got, want) {
				ev.violate(i, e, cell, -1, g.ID, c.field, formatNum(c.got), c.rel+" "+formatNum(want))
			}
		}
	}
	if e.Converged != nil {
		want := 1.0
		if e.Converged.MinFraction.IsSet() {
			var err error
			if want, err = ev.bound(i, "converged.min_fraction", &e.Converged.MinFraction, env, cell.Index); err != nil {
				return err
			}
		}
		got := float64(sim.ConvergedCount(g.Results)) / float64(len(g.Results))
		if got < want {
			ev.violate(i, e, cell, -1, g.ID, "converged.min_fraction",
				fmt.Sprintf("%d/%d replicas converged (%s)", sim.ConvergedCount(g.Results), len(g.Results), formatNum(got)),
				">= "+formatNum(want))
		}
	}
	if e.Winner != nil {
		if err := ev.evalWinner(i, e, cell, g); err != nil {
			return err
		}
	}
	if e.Messages != nil {
		if err := ev.evalMessages(i, e, cell, g); err != nil {
			return err
		}
	}
	if e.AlmostConsensus != nil {
		if err := ev.evalAlmostConsensus(i, e, cell, g); err != nil {
			return err
		}
	}
	return nil
}

// evalWinner checks the winner-distribution predicate.
func (ev *expectEval) evalWinner(i int, e *ExpectSpec, cell *CellResult, g *GroupResult) error {
	w := e.Winner
	env := cell.Vars
	if w.Label.IsSet() {
		label, err := ev.bound(i, "winner.label", &w.Label, env, cell.Index)
		if err != nil {
			return err
		}
		want := 1.0
		if w.LabelMinFraction.IsSet() {
			if want, err = ev.bound(i, "winner.label_min_fraction", &w.LabelMinFraction, env, cell.Index); err != nil {
				return err
			}
		}
		hits := 0
		for _, r := range g.Results {
			if float64(r.WinnerLabel) == label {
				hits++
			}
		}
		got := float64(hits) / float64(len(g.Results))
		if got < want {
			ev.violate(i, e, cell, -1, g.ID, "winner.label",
				fmt.Sprintf("label %s won %d/%d replicas (%s)", formatNum(label), hits, len(g.Results), formatNum(got)),
				fmt.Sprintf(">= %s of replicas winning label %s", formatNum(want), formatNum(label)))
		}
	}
	if w.Valid != nil {
		for ri, r := range g.Results {
			if r.WinnerValid != *w.Valid {
				ev.violate(i, e, cell, -1, g.ID, "winner.valid",
					fmt.Sprintf("replica %d winner %d has valid=%v", ri, r.WinnerLabel, r.WinnerValid),
					fmt.Sprintf("valid=%v for every replica", *w.Valid))
				break
			}
		}
	}
	if w.UniformAlpha.IsSet() {
		alpha, err := ev.bound(i, "winner.uniform_alpha", &w.UniformAlpha, env, cell.Index)
		if err != nil {
			return err
		}
		counts, err := winnerTally(g)
		if err != nil {
			return fmt.Errorf("scenario %q: expect[%d].winner.uniform_alpha: cell %d: %w", ev.s.Name, i, cell.Index, err)
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			return fmt.Errorf("scenario %q: expect[%d].winner.uniform_alpha: cell %d: %w", ev.s.Name, i, cell.Index, err)
		}
		if !res.IndistinguishableAt(alpha) {
			ev.violate(i, e, cell, -1, g.ID, "winner.uniform_alpha",
				fmt.Sprintf("chi-square p = %s (stat %s, df %d)", formatNum(res.P), formatNum(res.Stat), res.DF),
				fmt.Sprintf("p >= %s (uniform winners)", formatNum(alpha)))
		}
	}
	return nil
}

// winnerTally counts winners per start color of the group, in the start
// configuration's slot order (labels the start never supported are
// appended in first-win order, keeping the tally deterministic).
func winnerTally(g *GroupResult) ([]int, error) {
	if g.Start == nil {
		return nil, fmt.Errorf("no start configuration to tally winners against")
	}
	idx := map[int]int{}
	var counts []int
	for s := 0; s < g.Start.Slots(); s++ {
		if g.Start.Count(s) > 0 {
			label := g.Start.Label(s)
			if _, dup := idx[label]; !dup {
				idx[label] = len(counts)
				counts = append(counts, 0)
			}
		}
	}
	for _, r := range g.Results {
		j, ok := idx[r.WinnerLabel]
		if !ok {
			j = len(counts)
			idx[r.WinnerLabel] = j
			counts = append(counts, 0)
		}
		counts[j]++
	}
	return counts, nil
}

// pairedWinnerTallies tallies both groups' winners over the sorted union
// of winner labels, so the chi-square homogeneity test compares aligned
// category vectors.
func pairedWinnerTallies(ga, gb *GroupResult) (a, b []int) {
	labels := map[int]bool{}
	for _, r := range ga.Results {
		labels[r.WinnerLabel] = true
	}
	for _, r := range gb.Results {
		labels[r.WinnerLabel] = true
	}
	ordered := make([]int, 0, len(labels))
	for l := range labels {
		ordered = append(ordered, l)
	}
	sort.Ints(ordered)
	idx := make(map[int]int, len(ordered))
	for j, l := range ordered {
		idx[l] = j
	}
	a = make([]int, len(ordered))
	b = make([]int, len(ordered))
	for _, r := range ga.Results {
		a[idx[r.WinnerLabel]]++
	}
	for _, r := range gb.Results {
		b[idx[r.WinnerLabel]]++
	}
	return a, b
}

// evalMessages checks per-replica message totals. The bound expressions
// see "rounds" and "h" in addition to the cell bindings.
func (ev *expectEval) evalMessages(i int, e *ExpectSpec, cell *CellResult, g *GroupResult) error {
	env := make(map[string]float64, len(cell.Vars)+2)
	for k, v := range cell.Vars {
		env[k] = v
	}
	h, err := ruleSamples(&g.Spec.Rule)
	if err == nil {
		env["h"] = float64(h)
	}
	checks := []struct {
		field string
		q     *Quantity
		ok    func(got, want float64) bool
		rel   string
	}{
		{"messages.exact", &e.Messages.Exact, func(g, w float64) bool { return g == w }, "=="},
		{"messages.min", &e.Messages.Min, func(g, w float64) bool { return g >= w }, ">="},
		{"messages.max", &e.Messages.Max, func(g, w float64) bool { return g <= w }, "<="},
	}
	for _, c := range checks {
		if !c.q.IsSet() {
			continue
		}
		for ri, r := range g.Results {
			env["rounds"] = float64(r.Rounds)
			want, err := ev.bound(i, c.field, c.q, env, cell.Index)
			if err != nil {
				return err
			}
			got := float64(r.Messages)
			if !c.ok(got, want) {
				ev.violate(i, e, cell, -1, g.ID, c.field,
					fmt.Sprintf("replica %d sent %d messages in %d rounds", ri, r.Messages, r.Rounds),
					c.rel+" "+formatNum(want))
				break
			}
		}
	}
	return nil
}

// ruleSamples instantiates the group's rule once to read its per-round
// sample count (the "h" binding of message laws).
func ruleSamples(r *ResolvedRule) (int, error) {
	factory, err := rules.Spec{Name: r.Name, H: r.H, Beta: r.Beta}.Factory()
	if err != nil {
		return 0, err
	}
	if sr, ok := factory().(interface{ Samples() int }); ok {
		return sr.Samples(), nil
	}
	return 0, fmt.Errorf("rule %q has no per-round sample count", r.Name)
}

// evalAlmostConsensus checks the plurality-support predicate.
func (ev *expectEval) evalAlmostConsensus(i int, e *ExpectSpec, cell *CellResult, g *GroupResult) error {
	env := cell.Vars
	want, err := ev.bound(i, "almost_consensus.min_fraction", &e.AlmostConsensus.MinFraction, env, cell.Index)
	if err != nil {
		return err
	}
	n := g.Spec.N
	for ri, r := range g.Results {
		best := 0
		for _, c := range r.Final.CountsView() {
			if c > best {
				best = c
			}
		}
		got := float64(best) / float64(n)
		if got < want {
			ev.violate(i, e, cell, -1, g.ID, "almost_consensus.min_fraction",
				fmt.Sprintf("replica %d plurality support %s (%d/%d)", ri, formatNum(got), best, n),
				">= "+formatNum(want))
			break
		}
	}
	if e.AlmostConsensus.MaxRound.IsSet() {
		maxRound, err := ev.bound(i, "almost_consensus.max_round", &e.AlmostConsensus.MaxRound, env, cell.Index)
		if err != nil {
			return err
		}
		for ri, r := range g.Results {
			round := r.Rounds
			if r.AlmostConsensusRound >= 0 {
				round = r.AlmostConsensusRound
			}
			if float64(round) > maxRound {
				ev.violate(i, e, cell, -1, g.ID, "almost_consensus.max_round",
					fmt.Sprintf("replica %d reached it at round %d", ri, round),
					"<= "+formatNum(maxRound))
				break
			}
		}
	}
	return nil
}

// evalCompare checks the two-group statistical predicates on one cell.
func (ev *expectEval) evalCompare(i int, e *ExpectSpec, cell *CellResult) error {
	ev.report.Checks++
	var ga, gb *GroupResult
	for _, g := range cell.Groups {
		switch g.ID {
		case e.Compare.GroupA:
			ga = g
		case e.Compare.GroupB:
			gb = g
		}
	}
	if ga == nil || gb == nil {
		return fmt.Errorf("scenario %q: expect[%d].compare: cell %d is missing group %q or %q",
			ev.s.Name, i, cell.Index, e.Compare.GroupA, e.Compare.GroupB)
	}
	env := cell.Vars
	pair := fmt.Sprintf("%s vs %s", ga.ID, gb.ID)
	if e.Compare.RoundsKSAlpha.IsSet() {
		alpha, err := ev.bound(i, "compare.rounds_ks_alpha", &e.Compare.RoundsKSAlpha, env, cell.Index)
		if err != nil {
			return err
		}
		res, err := stats.TwoSampleKS(sim.Rounds(ga.Results), sim.Rounds(gb.Results))
		if err != nil {
			return fmt.Errorf("scenario %q: expect[%d].compare.rounds_ks_alpha: cell %d: %w", ev.s.Name, i, cell.Index, err)
		}
		if !res.IndistinguishableAt(alpha) {
			ev.violate(i, e, cell, -1, pair, "compare.rounds_ks_alpha",
				fmt.Sprintf("KS p = %s (D %s)", formatNum(res.P), formatNum(res.D)),
				fmt.Sprintf("p >= %s (indistinguishable round distributions)", formatNum(alpha)))
		}
	}
	if e.Compare.WinnerChiAlpha.IsSet() {
		alpha, err := ev.bound(i, "compare.winner_chi_alpha", &e.Compare.WinnerChiAlpha, env, cell.Index)
		if err != nil {
			return err
		}
		ca, cb := pairedWinnerTallies(ga, gb)
		res, err := stats.ChiSquareHomogeneity(ca, cb)
		if err != nil {
			return fmt.Errorf("scenario %q: expect[%d].compare.winner_chi_alpha: cell %d: %w", ev.s.Name, i, cell.Index, err)
		}
		if !res.IndistinguishableAt(alpha) {
			ev.violate(i, e, cell, -1, pair, "compare.winner_chi_alpha",
				fmt.Sprintf("chi-square p = %s (stat %s, df %d)", formatNum(res.P), formatNum(res.Stat), res.DF),
				fmt.Sprintf("p >= %s (homogeneous winner tallies)", formatNum(alpha)))
		}
	}
	if e.Compare.MaxMeanRatio.IsSet() || e.Compare.MinMeanRatio.IsSet() {
		meanA := stats.Mean(sim.Rounds(ga.Results))
		meanB := stats.Mean(sim.Rounds(gb.Results))
		ratio := meanA / meanB
		got := fmt.Sprintf("mean(%s)/mean(%s) = %s", ga.ID, gb.ID, formatNum(ratio))
		if e.Compare.MaxMeanRatio.IsSet() {
			want, err := ev.bound(i, "compare.max_mean_ratio", &e.Compare.MaxMeanRatio, env, cell.Index)
			if err != nil {
				return err
			}
			if !(ratio <= want) {
				ev.violate(i, e, cell, -1, pair, "compare.max_mean_ratio", got, "<= "+formatNum(want))
			}
		}
		if e.Compare.MinMeanRatio.IsSet() {
			want, err := ev.bound(i, "compare.min_mean_ratio", &e.Compare.MinMeanRatio, env, cell.Index)
			if err != nil {
				return err
			}
			if !(ratio >= want) {
				ev.violate(i, e, cell, -1, pair, "compare.min_mean_ratio", got, ">= "+formatNum(want))
			}
		}
	}
	return nil
}

// evalTable checks a table predicate on every row of the reduced table.
// Bounds see the scenario's params as bindings.
func (ev *expectEval) evalTable(i int, e *ExpectSpec) error {
	if ev.tbl == nil {
		return fmt.Errorf("scenario %q: expect[%d].table: no reduced table to check", ev.s.Name, i)
	}
	col := -1
	for ci, name := range ev.tbl.Columns {
		if name == e.Table.Column {
			col = ci
			break
		}
	}
	if col < 0 {
		return fmt.Errorf("scenario %q: expect[%d].table.column: no column %q (columns: %s)",
			ev.s.Name, i, e.Table.Column, strings.Join(ev.tbl.Columns, ", "))
	}
	env := make(map[string]float64, len(ev.s.Params))
	for _, name := range paramNames(ev.s.Params) {
		q := ev.s.Params[name]
		v, err := q.Eval(ev.p.Scale, nil)
		if err != nil {
			return fmt.Errorf("scenario %q: params.%s: %w", ev.s.Name, name, err)
		}
		env[name] = v
	}
	checks := []struct {
		field string
		q     *Quantity
		ok    func(got, want float64) bool
		rel   string
	}{
		{"table.equals", &e.Table.Equals, func(g, w float64) bool { return g == w }, "=="},
		{"table.min", &e.Table.Min, func(g, w float64) bool { return g >= w }, ">="},
		{"table.max", &e.Table.Max, func(g, w float64) bool { return g <= w }, "<="},
	}
	scoped := make(map[int]bool, len(e.Table.Rows))
	for _, r := range e.Table.Rows {
		if r >= len(ev.tbl.Rows) {
			return fmt.Errorf("scenario %q: expect[%d].table.rows: row %d out of range (table has %d rows)",
				ev.s.Name, i, r, len(ev.tbl.Rows))
		}
		scoped[r] = true
	}
	for ri, row := range ev.tbl.Rows {
		if len(scoped) > 0 && !scoped[ri] {
			continue
		}
		ev.report.Checks++
		if col >= len(row) {
			return fmt.Errorf("scenario %q: expect[%d].table: row %d has no column %d", ev.s.Name, i, ri, col)
		}
		got, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return fmt.Errorf("scenario %q: expect[%d].table: row %d column %q: value %q is not numeric",
				ev.s.Name, i, ri, e.Table.Column, row[col])
		}
		for _, c := range checks {
			if !c.q.IsSet() {
				continue
			}
			want, err := c.q.Eval(ev.p.Scale, env)
			if err != nil {
				return fmt.Errorf("scenario %q: expect[%d].%s: %w", ev.s.Name, i, c.field, err)
			}
			if !c.ok(got, want) {
				ev.violate(i, e, nil, ri, "", c.field,
					fmt.Sprintf("column %q = %s", e.Table.Column, formatNum(got)),
					c.rel+" "+formatNum(want))
			}
		}
	}
	return nil
}

// RunChecked executes the scenario like Run and then evaluates its expect
// blocks. The table is returned even when expectations fail; the error is
// the typed ExpectationErrors aggregate in that case (hard execution and
// evaluation errors are returned as-is, with a nil report).
func RunChecked(ctx context.Context, s *Scenario, p Params) (*Table, *ExpectReport, error) {
	tbl, suite, err := runScenario(ctx, s, p)
	if err != nil {
		return nil, nil, err
	}
	report, err := EvaluateExpectations(s, suite, tbl, p)
	if err != nil {
		return tbl, nil, err
	}
	return tbl, report, report.Err()
}
