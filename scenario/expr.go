package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The scenario expression language: arithmetic over the variables a spec
// binds (constants, sweep axes, derived values), so a file can say
// "100*n" for a round budget or "ceil(sqrt(n*log(n)))" for the §1.1 bias
// without a code change. The language is deliberately tiny:
//
//   - numbers (float64 literals) and variables bound by the spec;
//   - + - * / % and ^ (math.Pow, right-associative), unary minus;
//     % is math.Mod — truncated division, the result keeps the sign of
//     the dividend and works on non-integral operands (-7 % 3 is -1,
//     7 % -3 is 1, 7.5 % 2 is 1.5); integer contexts additionally reject
//     a negative result of any expression using % (see EvalInt);
//   - comparisons < <= > >= == != evaluating to 1 or 0;
//   - functions: log (natural), log2, exp, sqrt, pow, ceil, floor, round,
//     abs, min, max, and if(cond, then, else);
//   - parentheses.
//
// Evaluation is float64 throughout with the same math-package calls a
// hand-written experiment would make (x^y is math.Pow(x, y), log is
// math.Log), which is what makes a scenario file reproduce a hand-coded
// sweep bit-identically. Integer contexts (replicas, round budgets, κ
// targets) reject non-integral results instead of rounding silently; specs
// say ceil(...)/floor(...)/round(...) explicitly.

// Expr is a parsed scenario expression.
type Expr struct {
	src    string
	root   exprNode
	hasMod bool
}

// ParseExpr parses src into an evaluable expression.
func ParseExpr(src string) (*Expr, error) {
	p := &exprParser{src: src}
	p.next()
	root, err := p.parseComparison()
	if err != nil {
		return nil, fmt.Errorf("expression %q: %w", src, err)
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("expression %q: unexpected %q at offset %d", src, p.tok.text, p.tok.off)
	}
	return &Expr{src: src, root: root, hasMod: p.sawMod}, nil
}

// String returns the source the expression was parsed from.
func (e *Expr) String() string { return e.src }

// Eval evaluates the expression with the given variable bindings.
func (e *Expr) Eval(env map[string]float64) (float64, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return 0, fmt.Errorf("expression %q: %w", e.src, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("expression %q: result is %v", e.src, v)
	}
	return v, nil
}

// maxExactInt bounds EvalInt results to the range where float64 holds
// integers exactly (2^53); beyond it integrality is meaningless and a
// plain int conversion would silently wrap.
const maxExactInt = 1 << 53

// EvalInt evaluates the expression and requires an integral result (within
// 1e-9); fractional values must be made integral explicitly with
// ceil/floor/round in the spec. Because % is truncated (the result keeps
// the dividend's sign), a negative result of any expression using % is
// rejected here explicitly: in the integer contexts (replicas, budgets, κ
// targets, ticks) a silently negative residue is always a spec bug —
// write ((a % b) + b) % b for the non-negative residue.
func (e *Expr) EvalInt(env map[string]float64) (int, error) {
	v, err := e.Eval(env)
	if err != nil {
		return 0, err
	}
	r := math.Round(v)
	if math.Abs(v-r) > 1e-9 {
		return 0, fmt.Errorf("expression %q: value %v is not an integer (wrap it in ceil(), floor() or round())", e.src, v)
	}
	if math.Abs(r) > maxExactInt {
		return 0, fmt.Errorf("expression %q: value %v is outside the exactly-representable integer range (±2^53)", e.src, v)
	}
	if e.hasMod && r < 0 {
		return 0, fmt.Errorf("expression %q: negative result %v in an integer context with %% (truncated modulus keeps the dividend's sign; write ((a %% b) + b) %% b for the non-negative residue)", e.src, v)
	}
	return int(r), nil
}

// --- AST ---

type exprNode interface {
	eval(env map[string]float64) (float64, error)
}

type numNode float64

func (n numNode) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varNode string

func (n varNode) eval(env map[string]float64) (float64, error) {
	v, ok := env[string(n)]
	if !ok {
		return 0, fmt.Errorf("unknown variable %q (bound variables: %s)", string(n), boundNames(env))
	}
	return v, nil
}

type binNode struct {
	op   string
	l, r exprNode
}

func (n *binNode) eval(env map[string]float64) (float64, error) {
	l, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return math.Mod(l, r), nil
	case "^":
		return math.Pow(l, r), nil
	case "<":
		return boolVal(l < r), nil
	case "<=":
		return boolVal(l <= r), nil
	case ">":
		return boolVal(l > r), nil
	case ">=":
		return boolVal(l >= r), nil
	case "==":
		return boolVal(l == r), nil
	case "!=":
		return boolVal(l != r), nil
	}
	return 0, fmt.Errorf("unknown operator %q", n.op)
}

type negNode struct{ x exprNode }

func (n *negNode) eval(env map[string]float64) (float64, error) {
	v, err := n.x.eval(env)
	return -v, err
}

type callNode struct {
	name string
	args []exprNode
}

func (n *callNode) eval(env map[string]float64) (float64, error) {
	// if() is lazy: only the selected branch evaluates, so a condition
	// can guard a partial operation ("if(k > 2, n/(k-2), 1)").
	if n.name == "if" {
		cond, err := n.args[0].eval(env)
		if err != nil {
			return 0, err
		}
		if cond != 0 {
			return n.args[1].eval(env)
		}
		return n.args[2].eval(env)
	}
	args := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	switch n.name {
	case "log":
		return math.Log(args[0]), nil
	case "log2":
		return math.Log2(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "ceil":
		return math.Ceil(args[0]), nil
	case "floor":
		return math.Floor(args[0]), nil
	case "round":
		return math.Round(args[0]), nil
	case "abs":
		return math.Abs(args[0]), nil
	case "pow":
		return math.Pow(args[0], args[1]), nil
	case "min":
		return math.Min(args[0], args[1]), nil
	case "max":
		return math.Max(args[0], args[1]), nil
	}
	return 0, fmt.Errorf("unknown function %q", n.name)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func boundNames(env map[string]float64) string {
	if len(env) == 0 {
		return "none"
	}
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// funcArity maps the built-in functions to their argument counts.
var funcArity = map[string]int{
	"log": 1, "log2": 1, "exp": 1, "sqrt": 1, "ceil": 1, "floor": 1,
	"round": 1, "abs": 1, "pow": 2, "min": 2, "max": 2, "if": 3,
}

// --- lexer + parser ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
	num  float64
	off  int
}

type exprParser struct {
	src    string
	pos    int
	tok    token
	err    error
	sawMod bool
}

func (p *exprParser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, off: start}
		return
	}
	c := p.src[p.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		j := p.pos
		for j < len(p.src) && (p.src[j] >= '0' && p.src[j] <= '9' || p.src[j] == '.' ||
			p.src[j] == 'e' || p.src[j] == 'E' ||
			((p.src[j] == '+' || p.src[j] == '-') && j > p.pos && (p.src[j-1] == 'e' || p.src[j-1] == 'E'))) {
			j++
		}
		text := p.src[p.pos:j]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.err = fmt.Errorf("bad number %q at offset %d", text, start)
		}
		p.pos = j
		p.tok = token{kind: tokNum, text: text, num: v, off: start}
	case isIdentStart(c):
		j := p.pos
		for j < len(p.src) && isIdentPart(p.src[j]) {
			j++
		}
		p.tok = token{kind: tokIdent, text: p.src[p.pos:j], off: start}
		p.pos = j
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", off: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", off: start}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, text: ",", off: start}
	case strings.ContainsRune("+-*/%^<>=!", rune(c)):
		j := p.pos + 1
		if j < len(p.src) && p.src[j] == '=' && (c == '<' || c == '>' || c == '=' || c == '!') {
			j++
		}
		op := p.src[p.pos:j]
		if op == "=" || op == "!" {
			p.err = fmt.Errorf("bad operator %q at offset %d (comparisons are <=, >=, ==, !=)", op, start)
		}
		p.pos = j
		p.tok = token{kind: tokOp, text: op, off: start}
	default:
		p.err = fmt.Errorf("unexpected character %q at offset %d", string(c), start)
		p.pos++
		p.tok = token{kind: tokOp, text: string(c), off: start}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (p *exprParser) parseComparison() (exprNode, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case "<", "<=", ">", ">=", "==", "!=":
			op := p.tok.text
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: op, l: l, r: r}
		}
	}
	return l, p.err
}

func (p *exprParser) parseAdd() (exprNode, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: op, l: l, r: r}
	}
	return l, p.err
}

func (p *exprParser) parseMul() (exprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		op := p.tok.text
		if op == "%" {
			p.sawMod = true
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: op, l: l, r: r}
	}
	return l, p.err
}

func (p *exprParser) parseUnary() (exprNode, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negNode{x: x}, nil
	}
	return p.parsePow()
}

func (p *exprParser) parsePow() (exprNode, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "^" {
		p.next()
		// Right-associative: 2^3^2 is 2^(3^2).
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: "^", l: l, r: r}
	}
	return l, p.err
}

func (p *exprParser) parsePrimary() (exprNode, error) {
	if p.err != nil {
		return nil, p.err
	}
	switch p.tok.kind {
	case tokNum:
		v := p.tok.num
		p.next()
		return numNode(v), p.err
	case tokIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind != tokLParen {
			return varNode(name), p.err
		}
		arity, ok := funcArity[name]
		if !ok {
			return nil, fmt.Errorf("unknown function %q at offset %d", name, p.tok.off)
		}
		p.next()
		var args []exprNode
		if p.tok.kind != tokRParen {
			for {
				a, err := p.parseComparison()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.kind != tokComma {
					break
				}
				p.next()
			}
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("missing ) in call to %q", name)
		}
		p.next()
		if len(args) != arity {
			return nil, fmt.Errorf("%s() takes %d argument(s), got %d", name, arity, len(args))
		}
		return &callNode{name: name, args: args}, p.err
	case tokLParen:
		p.next()
		inner, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("missing closing parenthesis")
		}
		p.next()
		return inner, p.err
	case tokEOF:
		return nil, fmt.Errorf("unexpected end of expression")
	default:
		return nil, fmt.Errorf("unexpected %q at offset %d", p.tok.text, p.tok.off)
	}
}
