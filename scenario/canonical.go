package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonicalize returns the scenario's canonical serialization: a single
// compact JSON document with struct fields in declaration order, object
// keys sorted, numbers in Go's shortest round-trip form, and every null
// member (an unset Quantity or omitted optional section) stripped. Two
// specs that differ only cosmetically — whitespace, key order inside
// per-scale quantities, number formatting like 1000 vs 1e3 vs 1000.0 —
// canonicalize to identical bytes; any semantic edit changes them.
//
// This is the content-address contract of the result cache
// (internal/serve): a cache key derived from Hash survives cosmetic spec
// edits but never aliases two different experiments. The scenario is
// validated first, so only well-formed specs have a canonical form.
//
//consensus:strictwalk
func Canonicalize(s *Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Marshal once through the spec structs (declaration-ordered fields,
	// Quantity raw forms), then re-marshal through the generic JSON model:
	// encoding/json sorts map keys and renders each number in its shortest
	// round-trip form, which normalizes the cosmetic freedom the strict
	// decoder preserves.
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: canonicalize: %w", s.Name, err)
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("scenario %q: canonicalize: %w", s.Name, err)
	}
	out, err := json.Marshal(stripNulls(v))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: canonicalize: %w", s.Name, err)
	}
	return out, nil
}

// Hash returns the canonical hash of the scenario: the lowercase hex
// SHA-256 of its Canonicalize bytes. Together with a seed and a scale it
// fully addresses a suite result (the determinism contract: identical
// spec + Params reproduce identical tables), which is what makes results
// cacheable by content.
func Hash(s *Scenario) (string, error) {
	canon, err := Canonicalize(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// stripNulls removes null object members recursively. Unset quantities
// marshal as JSON null (so specs round-trip through the encoder), but a
// null member and an absent member mean the same thing to the strict
// decoder — the canonical form keeps neither. Array elements are
// positional and are never dropped.
func stripNulls(v any) any {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if t[k] == nil {
				delete(t, k)
				continue
			}
			t[k] = stripNulls(t[k])
		}
		return t
	case []any:
		for i := range t {
			t[i] = stripNulls(t[i])
		}
		return t
	default:
		return v
	}
}
