// Package scenario is the declarative experiment layer: any run the
// consensus Runner can execute — rule + parameters, engine, initial
// configuration, sweep axes over n/k/h/bias/…, §5 adversary schedule,
// replicas, stop conditions and requested metrics — described as a
// JSON-serializable Scenario value, expanded deterministically into
// concrete RunSpecs, and executed as a suite through one engine-agnostic
// executor that aggregates into the table shape the reproduction harness
// has always reported.
//
// The contract is determinism: identical spec + Params reproduce identical
// tables, bit for bit, regardless of worker scheduling. Expansion is a
// pure function of (Scenario, Params); every replica's random stream is
// derived up front from the base seed in expansion order; reducers see
// results in expansion order.
//
// Decoding is strict — unknown fields are rejected, every field is
// validated with an actionable error — so a typo in a scenario file fails
// loudly instead of silently running a different experiment. See DESIGN.md
// §6 for the spec schema and the determinism contract, and the scenarios/
// directory for the twelve checked-in paper experiments.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// CurrentSchema is the spec schema version this package decodes.
const CurrentSchema = 1

// Scenario describes a whole experiment as data: shared run settings, the
// sweep lattice, replica counts, and how to aggregate the executed cells.
// It is the strict-schema root: every struct reachable from it through
// exported fields is part of the spec surface, and strictsync requires
// each such field to be visited by the //consensus:strictwalk walkers.
//
//consensus:schema
type Scenario struct {
	// Schema is the spec schema version; must be CurrentSchema.
	Schema int `json:"schema"`
	// Name identifies the scenario (lowercase letters, digits, dashes).
	Name string `json:"name"`
	// Kind is "suite" (default: expand and execute runs) or "custom" (the
	// named Adapter produces the table from the spec's params directly —
	// for measurements that are not round-loop runs, e.g. the Lemma 4
	// coupling or exact one-round expectations).
	Kind string `json:"kind,omitempty"`
	// Adapter names the registered custom adapter (kind "custom" only).
	Adapter string `json:"adapter,omitempty"`
	// Experiment binds the scenario to a paper artifact (optional); bound
	// scenarios appear in the E1..E12 registry.
	Experiment *ExperimentMeta `json:"experiment,omitempty"`
	// Table sets the metadata of the aggregated output table.
	Table *TableMeta `json:"table,omitempty"`

	// Params are named constants available to every expression: a number,
	// a variable-free expression, or a {"quick": …, "full": …} pair.
	// Params may not reference other params; use Derived for that.
	Params map[string]Quantity `json:"params,omitempty"`
	// Derived are named values computed per sweep cell, in order; each
	// expression sees params, axis values and earlier derived values.
	Derived []Derivation `json:"derived,omitempty"`
	// Sweep lists the axes of the cell lattice; cells enumerate in
	// row-major order with the first axis slowest. An empty sweep is a
	// single cell.
	Sweep []Axis `json:"sweep,omitempty"`
	// Replicas is the number of independent runs per cell and run group
	// (default 1); the expression may reference cell variables.
	Replicas Quantity `json:"replicas,omitempty"`

	// RunDefaults are the settings shared by every run group; a group
	// overrides them section-wise (a group's non-nil section replaces the
	// default section wholesale).
	RunDefaults
	// Runs are the run groups executed per cell, in order (default: one
	// group with the shared settings).
	Runs []RunGroup `json:"runs,omitempty"`

	// Reducer names the registered aggregation producing the final table
	// (default "summary").
	Reducer string `json:"reducer,omitempty"`

	// Expect are the scenario's self-verification assertions, evaluated
	// against the executed suite (and the reduced table) after a checked
	// run; see expect.go. A scenario with expect blocks is its own
	// acceptance test.
	Expect []ExpectSpec `json:"expect,omitempty"`
}

// ExperimentMeta binds a scenario to a paper artifact.
type ExperimentMeta struct {
	// ID is the experiment identifier (E1..E12).
	ID string `json:"id"`
	// Name is a short human-readable title.
	Name string `json:"name"`
	// Claim cites the paper artifact being reproduced.
	Claim string `json:"claim"`
}

// TableMeta sets the aggregated table's metadata.
type TableMeta struct {
	Title   string   `json:"title,omitempty"`
	Claim   string   `json:"claim,omitempty"`
	Columns []string `json:"columns,omitempty"`
}

// Derivation is a named per-cell value.
type Derivation struct {
	Name  string   `json:"name"`
	Value Quantity `json:"value"`
}

// Axis is one sweep dimension: either numeric values (possibly
// expressions over params and earlier axes) or strings (e.g. adversary
// strategies).
type Axis struct {
	// Name binds the axis value as a variable in expressions (numeric
	// axes) or as a $name substitution (string axes).
	Name string `json:"name"`
	// Values are the numeric axis points.
	Values []Quantity `json:"values,omitempty"`
	// FullValues are appended to Values at Full scale.
	FullValues []Quantity `json:"full_values,omitempty"`
	// Strings are the string axis points (mutually exclusive with
	// Values/FullValues).
	Strings []string `json:"strings,omitempty"`
}

// RunDefaults are the run settings shared between the scenario level and
// run groups.
type RunDefaults struct {
	// Rule selects the update rule.
	Rule *RuleSpec `json:"rule,omitempty"`
	// Engine selects the execution backend: batch (default), agents,
	// graph, cluster.
	Engine string `json:"engine,omitempty"`
	// Parallelism shards the per-node engines within one run (default 1:
	// the replica pool already saturates the cores).
	Parallelism *Quantity `json:"parallelism,omitempty"`
	// Topology is the interaction graph (engine "graph" only).
	Topology *TopologySpec `json:"topology,omitempty"`
	// Network shapes message delivery on the event-driven cluster engine
	// (engine "cluster" only; a network section implies it).
	Network *NetworkSpec `json:"network,omitempty"`
	// FastForward tunes the hybrid engine's certified fast-forward
	// (engine "hybrid" only; a fast_forward section implies it).
	FastForward *FastForwardSpec `json:"fast_forward,omitempty"`
	// Init generates the start configuration (default singleton).
	Init *InitSpec `json:"init,omitempty"`
	// Nodes composes the start configuration from named heterogeneous
	// groups instead of one generator (mutually exclusive with Init):
	// per-group sizes, initial opinions, rule overrides, stubbornness,
	// join rounds and adversarial corruption. See groups.go.
	Nodes []NodeGroupSpec `json:"nodes,omitempty"`
	// Stop bounds the run.
	Stop *StopSpec `json:"stop,omitempty"`
	// Adversary enables the §5 fault-tolerance regime.
	Adversary *AdversarySpec `json:"adversary,omitempty"`
	// Metrics selects the observables recorded per run.
	Metrics *MetricsSpec `json:"metrics,omitempty"`
}

// RunGroup is one run configuration executed per sweep cell. Group
// sections override the scenario-level defaults wholesale.
type RunGroup struct {
	// ID labels the group in results (default "run<index>").
	ID string `json:"id,omitempty"`
	RunDefaults
}

// RuleSpec selects an update rule by name.
type RuleSpec struct {
	// Name is the rule name: voter, lazy-voter, 2-choices, 3-majority,
	// h-majority (with H), 2-median, undecided, or "<h>-majority".
	Name string `json:"name"`
	// H is the h-majority sample count; may reference cell variables.
	H Quantity `json:"h,omitempty"`
	// Beta is the lazy-voter idle probability.
	Beta Quantity `json:"beta,omitempty"`
}

// TopologySpec selects an interaction graph for the graph engine.
type TopologySpec struct {
	// Name is the topology: complete, ring, torus, star, random-regular.
	Name string `json:"name"`
	// Rows is the torus row count (default: the square root of n; n must
	// then be a perfect square).
	Rows Quantity `json:"rows,omitempty"`
	// Degree is the random-regular vertex degree.
	Degree Quantity `json:"degree,omitempty"`
}

// NetworkSpec configures the cluster engine's network model: per-leg
// latency (fixed delay plus uniform jitter), i.i.d. per-leg message loss
// with pull retry, and scheduled partitions. All quantities are in ticks
// of the engine's virtual clock (one lockstep round = one tick). The
// empty section is the zero-latency lockstep model.
type NetworkSpec struct {
	// Delay is the fixed per-leg delivery delay in ticks (default 0).
	Delay Quantity `json:"delay,omitempty"`
	// Jitter adds a uniform extra delay in [0, jitter] ticks per leg.
	Jitter Quantity `json:"jitter,omitempty"`
	// Loss is the i.i.d. per-leg loss probability in [0, 1).
	Loss Quantity `json:"loss,omitempty"`
	// RetryAfter is the pull-retry timeout in ticks (default 1).
	RetryAfter Quantity `json:"retry_after,omitempty"`
	// Partitions are scheduled communication splits.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
}

// PartitionSpec is one scheduled communication split: during ticks
// [from, until) the population divides into groups contiguous id blocks
// and messages crossing blocks are dropped.
type PartitionSpec struct {
	// From is the first tick of the split window.
	From Quantity `json:"from"`
	// Until is the first tick after the window.
	Until Quantity `json:"until"`
	// Groups is the number of contiguous id blocks (default 2).
	Groups Quantity `json:"groups,omitempty"`
}

// FastForwardSpec tunes the hybrid engine's certified analytic
// fast-forward (DESIGN.md §8). Every field is optional; an unset field
// selects the engine default. The empty section just selects the hybrid
// engine with default tuning.
type FastForwardSpec struct {
	// MinStretch is the smallest stretch worth taking (default 4).
	MinStretch Quantity `json:"min_stretch,omitempty"`
	// MaxStretch caps a single certified stretch (default 65536).
	MaxStretch Quantity `json:"max_stretch,omitempty"`
	// Delta is the per-skipped-round envelope failure budget (default
	// 1e-12).
	Delta Quantity `json:"delta,omitempty"`
	// GapFactor scales the near-tie boundary margin (default 16).
	GapFactor Quantity `json:"gap_factor,omitempty"`
	// DriftFactor scales the drift-dominance criterion (default 8).
	DriftFactor Quantity `json:"drift_factor,omitempty"`
	// ExtinctionFloor is the per-color support floor in nodes (default
	// 64).
	ExtinctionFloor Quantity `json:"extinction_floor,omitempty"`
}

// InitSpec generates the start configuration of every run in a group.
type InitSpec struct {
	// Generator is the workload generator name: singleton, consensus,
	// balanced, biased, two-block, zipf, max-bounded, random-composition,
	// random-assignment.
	Generator string `json:"generator"`
	// K is the color count (balanced, biased, zipf, random-*).
	K Quantity `json:"k,omitempty"`
	// Bias is the leader head start (biased).
	Bias Quantity `json:"bias,omitempty"`
	// A is the first block size (two-block).
	A Quantity `json:"a,omitempty"`
	// MaxSupport caps per-color support (max-bounded).
	MaxSupport Quantity `json:"max_support,omitempty"`
	// S is the Zipf exponent (zipf); defaults to 1.
	S Quantity `json:"s,omitempty"`
}

// StopSpec bounds a run.
type StopSpec struct {
	// MaxRounds is the round budget (default 10,000,000).
	MaxRounds Quantity `json:"max_rounds,omitempty"`
	// TargetColors stops once at most this many colors remain (default 1).
	TargetColors Quantity `json:"target_colors,omitempty"`
	// When stops on a named predicate.
	When *PredicateSpec `json:"when,omitempty"`
}

// PredicateSpec names a registered stop predicate with its threshold.
type PredicateSpec struct {
	// Name is the predicate: max-support-exceeds, bias-at-least,
	// colors-at-most, round-at-least.
	Name string `json:"name"`
	// Value is the predicate threshold; may reference cell variables.
	Value Quantity `json:"value"`
}

// AdversarySpec configures the §5 dynamic adversary. A fresh adversary
// instance is constructed per run (the strategies may carry run-local
// state).
type AdversarySpec struct {
	// Name is the strategy (boost-runner-up, revive-weakest,
	// inject-invalid, random-noise) or a "$axis" reference to a string
	// sweep axis.
	Name string `json:"name"`
	// Budget is the per-round corruption budget F.
	Budget Quantity `json:"budget"`
	// Epsilon is the almost-consensus threshold parameter ε in (0, 1).
	Epsilon Quantity `json:"epsilon"`
	// Window is the §5 stability window in rounds.
	Window Quantity `json:"window"`
}

// MetricsSpec selects per-run observables.
type MetricsSpec struct {
	// ColorTimes records the paper's T^κ reduction times for each κ, in
	// order; entries may reference cell variables.
	ColorTimes []Quantity `json:"color_times,omitempty"`
	// TraceEvery samples a trace point every this many rounds (0 = off).
	TraceEvery Quantity `json:"trace_every,omitempty"`
}

// Quantity is a scale-resolvable numeric value: a JSON number, a string
// expression over the spec's variables, or a {"quick": …, "full": …}
// object whose values are numbers or expressions. The zero Quantity is
// unset.
//
// Quantities are immutable after decoding: expressions are parsed at
// validation time (for syntax errors with field paths) and again at each
// Eval. The expressions are tiny, so re-parsing costs nothing next to a
// simulation round — and it keeps a decoded Scenario safe to Expand/Run
// from concurrent goroutines.
type Quantity struct {
	raw      json.RawMessage
	variants map[Scale]string
}

// Num returns a Quantity holding a literal number.
func Num(v float64) Quantity {
	src := strconv.FormatFloat(v, 'g', -1, 64)
	return Quantity{raw: json.RawMessage(src), variants: map[Scale]string{Quick: src, Full: src}}
}

// Expression returns a Quantity holding an expression source.
func Expression(src string) Quantity {
	raw, _ := json.Marshal(src)
	return Quantity{raw: json.RawMessage(raw), variants: map[Scale]string{Quick: src, Full: src}}
}

// PerScale returns a Quantity with distinct quick/full expressions.
func PerScale(quick, full string) Quantity {
	raw, _ := json.Marshal(map[string]string{"quick": quick, "full": full})
	return Quantity{raw: json.RawMessage(raw), variants: map[Scale]string{Quick: quick, Full: full}}
}

// IsSet reports whether the quantity was given.
func (q *Quantity) IsSet() bool { return q.variants != nil }

// Source returns the expression source selected for scale.
func (q *Quantity) Source(scale Scale) string { return q.variants[scale] }

// UnmarshalJSON implements strict quantity decoding. JSON null leaves the
// quantity unset (the encoder emits null for unset quantities, so specs
// round-trip).
func (q *Quantity) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "null" {
		*q = Quantity{}
		return nil
	}
	q.raw = append(json.RawMessage(nil), data...)
	if trimmed == "" {
		return fmt.Errorf("quantity must be a number, an expression string, or {\"quick\": …, \"full\": …}")
	}
	switch trimmed[0] {
	case '"':
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		if strings.TrimSpace(s) == "" {
			return fmt.Errorf("quantity expression must be non-empty")
		}
		q.variants = map[Scale]string{Quick: s, Full: s}
	case '{':
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			return err
		}
		q.variants = make(map[Scale]string, 2)
		// Visit the variant keys sorted so that the first-reported error on
		// an object with several bad entries is byte-stable across runs.
		keys := make([]string, 0, len(m))
		for key := range m {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			scale, err := ParseScale(key)
			if err != nil {
				return fmt.Errorf("quantity variant %q: %w", key, err)
			}
			src, err := scalarSource(m[key])
			if err != nil {
				return fmt.Errorf("quantity variant %q: %w", key, err)
			}
			q.variants[scale] = src
		}
		for _, scale := range []Scale{Quick, Full} {
			if _, ok := q.variants[scale]; !ok {
				return fmt.Errorf("quantity variant %q missing (per-scale quantities need both quick and full)", scale)
			}
		}
	default:
		var v float64
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("quantity must be a number, an expression string, or {\"quick\": …, \"full\": …}: %w", err)
		}
		src := strings.TrimSpace(string(data))
		q.variants = map[Scale]string{Quick: src, Full: src}
	}
	return nil
}

// MarshalJSON round-trips the original representation.
func (q Quantity) MarshalJSON() ([]byte, error) {
	if q.raw == nil {
		return []byte("null"), nil
	}
	return q.raw, nil
}

func scalarSource(raw json.RawMessage) (string, error) {
	trimmed := strings.TrimSpace(string(raw))
	if trimmed == "" {
		return "", fmt.Errorf("value must be a number or an expression string")
	}
	if trimmed[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return "", err
		}
		if strings.TrimSpace(s) == "" {
			return "", fmt.Errorf("expression must be non-empty")
		}
		return s, nil
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("value must be a number or an expression string: %w", err)
	}
	return trimmed, nil
}

// compile checks both scale variants parse, reporting errors under path.
// It does not retain the parsed form: Eval re-parses, keeping Quantity
// immutable (and concurrency-safe) after decoding. Variants are checked
// in fixed scale order (not map order) so that when both are malformed
// the same one is always reported first.
func (q *Quantity) compile(path string) error {
	if !q.IsSet() {
		return nil
	}
	for _, scale := range []Scale{Quick, Full} {
		src, ok := q.variants[scale]
		if !ok {
			continue
		}
		if _, err := ParseExpr(src); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// parsed returns the expression for the given scale.
func (q *Quantity) parsed(scale Scale) (*Expr, error) {
	if !q.IsSet() {
		return nil, fmt.Errorf("quantity is unset")
	}
	src, ok := q.variants[scale]
	if !ok {
		return nil, fmt.Errorf("quantity has no %v variant", scale)
	}
	return ParseExpr(src)
}

// Eval evaluates the quantity at the given scale with env bindings.
func (q *Quantity) Eval(scale Scale, env map[string]float64) (float64, error) {
	e, err := q.parsed(scale)
	if err != nil {
		return 0, err
	}
	return e.Eval(env)
}

// EvalInt evaluates the quantity and requires an integral result.
func (q *Quantity) EvalInt(scale Scale, env map[string]float64) (int, error) {
	e, err := q.parsed(scale)
	if err != nil {
		return 0, err
	}
	return e.EvalInt(env)
}

// evalIntOr evaluates q when set, else returns def.
func evalIntOr(q *Quantity, scale Scale, env map[string]float64, def int, path string) (int, error) {
	if q == nil || !q.IsSet() {
		return def, nil
	}
	v, err := q.EvalInt(scale, env)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// evalFloatOr evaluates q when set, else returns def.
func evalFloatOr(q *Quantity, scale Scale, env map[string]float64, def float64, path string) (float64, error) {
	if q == nil || !q.IsSet() {
		return def, nil
	}
	v, err := q.Eval(scale, env)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// validName reports whether name is a lowercase slug (letters, digits,
// dashes), the charset scenario, group and reducer names use — and the
// charset every validation message advertises.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if !unicode.IsLower(r) && !unicode.IsDigit(r) && r != '-' {
			return false
		}
	}
	return true
}

// validVarName reports whether name can be bound as an expression
// variable (params, sweep axes, derived values): a lowercase identifier —
// letters, digits, underscores, not starting with a digit. Dashes are
// excluded on purpose: "my-axis" would parse as a subtraction inside an
// expression.
func validVarName(name string) bool {
	for i, r := range name {
		switch {
		case unicode.IsLower(r) || r == '_':
		case unicode.IsDigit(r) && i > 0:
		default:
			return false
		}
	}
	return name != ""
}
