package scenario

import (
	"context"
	"reflect"
	"testing"
)

const progressSpec = `{
	"schema": 1,
	"name": "progress-test",
	"sweep": [{"name": "n", "values": [64, 128, 256]}],
	"replicas": "3",
	"rule": {"name": "3-majority"},
	"init": {"generator": "balanced", "k": "2"},
	"stop": {"max_rounds": "2000"}
}`

func collectProgress(t *testing.T, workers int) ([]ProgressEvent, *SuiteResult) {
	t.Helper()
	s, err := DecodeBytes([]byte(progressSpec))
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	p := Params{Seed: 7, Scale: Quick, Workers: workers,
		Progress: func(ev ProgressEvent) { events = append(events, ev) }}
	suite, err := ExecuteSuite(context.Background(), s, p)
	if err != nil {
		t.Fatal(err)
	}
	return events, suite
}

// TestProgressSequence pins the event shape: one suite-start with the
// totals, one run-done per run with Done counting up in expansion order,
// and one cell-done right after each cell's last run.
func TestProgressSequence(t *testing.T) {
	events, suite := collectProgress(t, 1)
	total, cells := 9, 3 // 3 sweep cells × 3 replicas

	if len(events) != 1+total+cells {
		t.Fatalf("got %d events, want %d (start + %d runs + %d cells)", len(events), 1+total+cells, total, cells)
	}
	first := events[0]
	if first.Kind != ProgressSuiteStart || first.Total != total || first.Cells != cells ||
		first.Scenario != "progress-test" || first.Done != 0 || first.Cell != -1 {
		t.Fatalf("bad suite-start event: %+v", first)
	}

	done, cellDone := 0, 0
	for _, ev := range events[1:] {
		switch ev.Kind {
		case ProgressRunDone:
			done++
			if ev.Done != done || ev.Total != total {
				t.Fatalf("run-done out of order: %+v at position %d", ev, done)
			}
			if ev.Cell != (done-1)/3 || ev.Replica != (done-1)%3 {
				t.Fatalf("run-done not in expansion order: %+v (done=%d)", ev, done)
			}
			if ev.Rounds <= 0 || !ev.Converged {
				t.Fatalf("run-done missing its run summary: %+v", ev)
			}
			res := suite.Cells[ev.Cell].Groups[ev.Group].Results[ev.Replica]
			if ev.Rounds != res.Rounds || ev.Converged != res.Converged {
				t.Fatalf("run-done summary %+v disagrees with the result (rounds=%d converged=%v)", ev, res.Rounds, res.Converged)
			}
		case ProgressCellDone:
			if done%3 != 0 || ev.Cell != done/3-1 {
				t.Fatalf("cell-done misplaced: %+v after %d runs", ev, done)
			}
			if ev.Done != done || ev.Replica != -1 {
				t.Fatalf("bad cell-done event: %+v", ev)
			}
			cellDone++
		default:
			t.Fatalf("unexpected event kind %q mid-suite: %+v", ev.Kind, ev)
		}
	}
	if done != total || cellDone != cells {
		t.Fatalf("saw %d run-done and %d cell-done events, want %d and %d", done, cellDone, total, cells)
	}
}

// TestProgressWorkerIndependent: the event sequence is part of the
// determinism contract — scheduling may finish runs in any order, but
// the reorder buffer must emit the identical sequence at any worker
// count.
func TestProgressWorkerIndependent(t *testing.T) {
	sequential, _ := collectProgress(t, 1)
	for _, workers := range []int{2, 8} {
		parallel, _ := collectProgress(t, workers)
		if !reflect.DeepEqual(sequential, parallel) {
			t.Fatalf("workers=%d changed the progress sequence:\n%+v\nvs workers=1:\n%+v", workers, parallel, sequential)
		}
	}
}

// TestProgressDoesNotAffectResults: observation is passive — the suite
// with a callback attached reduces to the same table as without.
func TestProgressDoesNotAffectResults(t *testing.T) {
	s, err := DecodeBytes([]byte(progressSpec))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(context.Background(), s, Params{Seed: 7, Scale: Quick, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(context.Background(), s, Params{Seed: 7, Scale: Quick, Workers: 4,
		Progress: func(ProgressEvent) {}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, observed.Rows) {
		t.Fatalf("progress observation changed the table:\n%v\nvs\n%v", observed.Rows, plain.Rows)
	}
}
