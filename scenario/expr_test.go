package scenario

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestExprEval(t *testing.T) {
	env := map[string]float64{"n": 4096, "k": 8, "h": 2, "gamma": 2}
	tests := []struct {
		src  string
		want float64
	}{
		{src: "42", want: 42},
		{src: "1.5e2", want: 150},
		{src: "n", want: 4096},
		{src: "2 + 3 * 4", want: 14},
		{src: "(2 + 3) * 4", want: 20},
		{src: "100 * n", want: 409600},
		{src: "n / 8", want: 512},
		{src: "-n + 1", want: -4095},
		{src: "10 % 3", want: 1},
		{src: "2 ^ 10", want: 1024},
		{src: "2 ^ 3 ^ 2", want: 512}, // right-associative
		{src: "n ^ 0.5", want: 64},
		{src: "sqrt(n)", want: 64},
		{src: "log(exp(1))", want: 1},
		{src: "log2(8)", want: 3},
		{src: "ceil(1.2)", want: 2},
		{src: "floor(1.8)", want: 1},
		{src: "round(1.5)", want: 2},
		{src: "abs(-3)", want: 3},
		{src: "min(3, 5)", want: 3},
		{src: "max(3, 5)", want: 5},
		{src: "pow(2, 8)", want: 256},
		{src: "h <= 2", want: 1},
		{src: "h < 2", want: 0},
		{src: "h == 2", want: 1},
		{src: "h != 2", want: 0},
		{src: "if(h <= 2, 36, 12)", want: 36},
		{src: "if(h > 2, 36, 12)", want: 12},
		// if() is lazy: the unselected branch must not evaluate, so a
		// condition can guard a division.
		{src: "if(h == 2, h, 10 / (h - 2))", want: 2},
		{src: "if(h != 2, 10 / (h - 2), -1)", want: -1},
		{src: "max(2, ceil(gamma * log(n)))", want: math.Max(2, math.Ceil(2*math.Log(4096)))},
	}
	for _, tt := range tests {
		got, err := mustParse(t, tt.src).Eval(env)
		if err != nil {
			t.Errorf("Eval(%q): %v", tt.src, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

// TestExprMatchesHandWrittenMath pins the bit-identity contract: the
// expressions the checked-in scenarios use must evaluate to exactly the
// float64 the hand-coded experiments computed.
func TestExprMatchesHandWrittenMath(t *testing.T) {
	for _, n := range []int{256, 4096, 16384, 65536} {
		env := map[string]float64{"n": float64(n)}
		// E8's bias: int(math.Ceil(math.Sqrt(float64(n) * math.Log(float64(n))))).
		bias, err := mustParse(t, "ceil(sqrt(n * log(n)))").EvalInt(env)
		if err != nil {
			t.Fatal(err)
		}
		if want := int(math.Ceil(math.Sqrt(float64(n) * math.Log(float64(n))))); bias != want {
			t.Errorf("n=%d: bias expr = %d, hand-written = %d", n, bias, want)
		}
		// E12's κ*: int(math.Ceil(math.Pow(n, 0.25) * math.Pow(math.Log(n), 0.125))).
		kstar, err := mustParse(t, "ceil(n^0.25 * log(n)^0.125)").EvalInt(env)
		if err != nil {
			t.Fatal(err)
		}
		if want := int(math.Ceil(math.Pow(float64(n), 0.25) * math.Pow(math.Log(float64(n)), 0.125))); kstar != want {
			t.Errorf("n=%d: kstar expr = %d, hand-written = %d", n, kstar, want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	bad := []struct {
		src, wantSub string
	}{
		{src: "", wantSub: "unexpected end"},
		{src: "1 +", wantSub: "unexpected end"},
		{src: "(1", wantSub: "missing closing parenthesis"},
		{src: "nope(1)", wantSub: "unknown function"},
		{src: "min(1)", wantSub: "takes 2 argument"},
		{src: "1 = 2", wantSub: "comparisons are"},
		{src: "a $ b", wantSub: "unexpected character"},
		{src: "1 2", wantSub: "unexpected"},
	}
	for _, tt := range bad {
		if _, err := ParseExpr(tt.src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error containing %q", tt.src, tt.wantSub)
		} else if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("ParseExpr(%q) error %q, want substring %q", tt.src, err, tt.wantSub)
		}
	}

	if _, err := mustParse(t, "x + 1").Eval(map[string]float64{"n": 1}); err == nil ||
		!strings.Contains(err.Error(), `unknown variable "x"`) {
		t.Errorf("unknown variable error = %v", err)
	}
	if _, err := mustParse(t, "1 / 0").Eval(nil); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Errorf("division by zero error = %v", err)
	}
	if _, err := mustParse(t, "n / 3").EvalInt(map[string]float64{"n": 10}); err == nil ||
		!strings.Contains(err.Error(), "not an integer") {
		t.Errorf("EvalInt fractional error = %v", err)
	}
	if _, err := mustParse(t, "n ^ 4").EvalInt(map[string]float64{"n": 100000}); err == nil ||
		!strings.Contains(err.Error(), "exactly-representable") {
		t.Errorf("EvalInt overflow error = %v", err)
	}
	if _, err := mustParse(t, "log(-1)").Eval(nil); err == nil {
		t.Error("log(-1) should report a NaN result")
	}
}

// TestExprModSemantics pins the documented % semantics (DESIGN.md §6.1):
// math.Mod — truncated division, the result keeps the dividend's sign,
// and non-integral operands work.
func TestExprModSemantics(t *testing.T) {
	env := map[string]float64{"a": -7, "b": 3}
	tests := []struct {
		src  string
		want float64
	}{
		{src: "7 % 3", want: 1},
		{src: "-7 % 3", want: -1}, // sign of the dividend
		{src: "7 % -3", want: 1},  // divisor's sign is ignored
		{src: "-7 % -3", want: -1},
		{src: "7.5 % 2", want: 1.5}, // float operands, exact
		{src: "-7.5 % 2", want: -1.5},
		{src: "a % b", want: math.Mod(-7, 3)},
		{src: "((a % b) + b) % b", want: 2}, // the documented non-negative residue
	}
	for _, tt := range tests {
		got, err := mustParse(t, tt.src).Eval(env)
		if err != nil {
			t.Errorf("Eval(%q): %v", tt.src, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}

	// Integer contexts reject a negative modulus result explicitly...
	if _, err := mustParse(t, "-7 % 3").EvalInt(nil); err == nil ||
		!strings.Contains(err.Error(), "dividend's sign") {
		t.Errorf("negative modulus in an integer context = %v, want the documented rejection", err)
	}
	if _, err := mustParse(t, "(2 % 3) - 5").EvalInt(nil); err == nil {
		t.Error("negative result of a %-using expression must be rejected in an integer context")
	}
	// ...while non-negative modulus results and %-free negatives still pass.
	if v, err := mustParse(t, "((a % b) + b) % b").EvalInt(env); err != nil || v != 2 {
		t.Errorf("non-negative residue = %d, %v", v, err)
	}
	if v, err := mustParse(t, "-7 + 3").EvalInt(nil); err != nil || v != -4 {
		t.Errorf("%%-free negative integer = %d, %v (must stay allowed)", v, err)
	}
	if _, err := mustParse(t, "1 % 0").Eval(nil); err == nil ||
		!strings.Contains(err.Error(), "modulo by zero") {
		t.Errorf("modulo by zero error = %v", err)
	}
}
