package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ignorecomply/consensus/internal/adversary"
	"github.com/ignorecomply/consensus/internal/config"
	"github.com/ignorecomply/consensus/internal/sim"
	"github.com/ignorecomply/consensus/internal/stats"
)

// Public aliases: the scenario layer speaks the same types as the Runner.
type (
	// Config is a consensus configuration (support counts per color).
	Config = config.Config
	// Result describes one completed run on any engine.
	Result = sim.Result
	// Engine selects a run's execution backend.
	Engine = sim.Engine
)

// Reducer aggregates an executed suite into a table. Reducers are looked
// up by the spec's "reducer" field; register custom ones before Run.
type Reducer func(suite *SuiteResult) (*Table, error)

// Adapter executes a kind "custom" scenario entirely in Go, with the spec
// supplying the parameters; used for measurements that are not round-loop
// runs (exact couplings, one-round expectations). Long-running adapters
// should honor ctx cancellation between measurement units.
type Adapter func(ctx context.Context, s *Scenario, p Params) (*Table, error)

// StopPredicate builds a per-run stop condition from its integer
// threshold; the run converges the first time the returned function
// reports true.
type StopPredicate func(threshold int) func(round int, c *Config) bool

var registry = struct {
	sync.RWMutex
	reducers   map[string]Reducer
	adapters   map[string]Adapter
	predicates map[string]StopPredicate
}{
	reducers: map[string]Reducer{"summary": summaryReduce},
	adapters: map[string]Adapter{},
	predicates: map[string]StopPredicate{
		"max-support-exceeds": func(threshold int) func(int, *Config) bool {
			return func(_ int, c *Config) bool {
				_, maxSup := c.Max()
				return maxSup > threshold
			}
		},
		"bias-at-least": func(threshold int) func(int, *Config) bool {
			return func(_ int, c *Config) bool { return c.Bias() >= threshold }
		},
		"colors-at-most": func(threshold int) func(int, *Config) bool {
			return func(_ int, c *Config) bool { return c.Remaining() <= threshold }
		},
		"round-at-least": func(threshold int) func(int, *Config) bool {
			return func(round int, _ *Config) bool { return round >= threshold }
		},
	},
}

// RegisterReducer registers (or replaces) a named reducer.
func RegisterReducer(name string, r Reducer) {
	if name == "" || r == nil {
		panic("scenario: RegisterReducer needs a name and a function")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.reducers[name] = r
}

// RegisterAdapter registers (or replaces) a named custom-scenario adapter.
func RegisterAdapter(name string, a Adapter) {
	if name == "" || a == nil {
		panic("scenario: RegisterAdapter needs a name and a function")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.adapters[name] = a
}

// RegisterStopPredicate registers (or replaces) a named stop predicate.
func RegisterStopPredicate(name string, p StopPredicate) {
	if name == "" || p == nil {
		panic("scenario: RegisterStopPredicate needs a name and a function")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.predicates[name] = p
}

func lookupReducer(name string) (Reducer, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.reducers[name]
	return r, ok
}

func lookupAdapter(name string) (Adapter, bool) {
	registry.RLock()
	defer registry.RUnlock()
	a, ok := registry.adapters[name]
	return a, ok
}

func lookupStopPredicate(name string) (StopPredicate, bool) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.predicates[name]
	return p, ok
}

func stopPredicateNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.predicates))
	for name := range registry.predicates {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func reducerNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.reducers))
	for name := range registry.reducers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func adapterNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.adapters))
	for name := range registry.adapters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RegisteredReducers returns the names of all registered reducers in
// sorted order, so listings (and the error messages built from them) are
// byte-stable across runs.
func RegisteredReducers() []string { return reducerNames() }

// RegisteredAdapters returns the names of all registered custom-scenario
// adapters in sorted order.
func RegisteredAdapters() []string { return adapterNames() }

// RegisteredStopPredicates returns the names of all registered stop
// predicates in sorted order.
func RegisteredStopPredicates() []string { return stopPredicateNames() }

// adversaryByNameCheck validates an adversary name without keeping the
// instance.
func adversaryByNameCheck(name string) (adversary.Adversary, error) {
	return adversary.ByName(name, 0)
}

// summaryReduce is the default reducer: one row per cell × group with
// round statistics and convergence counts — what a user-authored scenario
// gets without writing any Go. It is also the walker of the spec's table
// section (via NewTable), which is why it carries the strictwalk
// directive: the title/claim/columns metadata is consumed here, not in
// Validate.
//
//consensus:strictwalk
func summaryReduce(suite *SuiteResult) (*Table, error) {
	tbl := suite.Scenario.NewTable()
	axes := make([]string, 0, len(suite.Scenario.Sweep))
	for _, ax := range suite.Scenario.Sweep {
		axes = append(axes, ax.Name)
	}
	switch {
	case len(tbl.Columns) == 0:
		tbl.Columns = append(append([]string{}, axes...),
			"group", "replicas", "converged", "mean rounds", "std", "q95")
	case len(tbl.Columns) != len(axes)+6:
		// A custom header may rename the columns but not change their
		// count — anything else silently misaligns the rows.
		return nil, fmt.Errorf("scenario %q: the summary reducer emits %d columns (%d sweep axes + 6 statistics) but table.columns has %d; drop table.columns or register a custom reducer",
			suite.Scenario.Name, len(axes)+6, len(axes), len(tbl.Columns))
	}
	for _, cell := range suite.Cells {
		for _, grp := range cell.Groups {
			row := make([]any, 0, len(axes)+6)
			for _, ax := range axes {
				if sv, ok := cell.Strings[ax]; ok {
					row = append(row, sv)
				} else {
					row = append(row, cell.Vars[ax])
				}
			}
			st := stats.Summarize(sim.Rounds(grp.Results))
			row = append(row, grp.ID, len(grp.Results),
				FormatFloat(float64(sim.ConvergedCount(grp.Results)))+"/"+FormatFloat(float64(len(grp.Results))),
				st.Mean, st.Std, st.Q95)
			tbl.AddRow(row...)
		}
	}
	return tbl, nil
}

// NewTable returns a table pre-filled with the scenario's metadata: the
// experiment ID (or the scenario name), and the title/claim/columns of the
// spec's table section.
func (s *Scenario) NewTable() *Table {
	tbl := &Table{ID: s.Name}
	if s.Experiment != nil {
		tbl.ID = s.Experiment.ID
	}
	if s.Table != nil {
		tbl.Title = s.Table.Title
		tbl.Claim = s.Table.Claim
		tbl.Columns = append([]string(nil), s.Table.Columns...)
	}
	return tbl
}

// ParamFloat evaluates the named spec parameter at the given scale.
func (s *Scenario) ParamFloat(name string, scale Scale) (float64, error) {
	q, ok := s.Params[name]
	if !ok {
		return 0, fmt.Errorf("scenario %q: no parameter %q (defined: %s)",
			s.Name, name, strings.Join(paramNames(s.Params), ", "))
	}
	v, err := q.Eval(scale, nil)
	if err != nil {
		return 0, fmt.Errorf("scenario %q: params.%s: %w", s.Name, name, err)
	}
	return v, nil
}

// ParamInt evaluates the named spec parameter and requires an integer.
func (s *Scenario) ParamInt(name string, scale Scale) (int, error) {
	q, ok := s.Params[name]
	if !ok {
		return 0, fmt.Errorf("scenario %q: no parameter %q (defined: %s)",
			s.Name, name, strings.Join(paramNames(s.Params), ", "))
	}
	v, err := q.EvalInt(scale, nil)
	if err != nil {
		return 0, fmt.Errorf("scenario %q: params.%s: %w", s.Name, name, err)
	}
	return v, nil
}

func paramNames(params map[string]Quantity) []string {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
