package scenario_test

import (
	"context"
	"encoding/json"
	"strconv"
	"testing"

	"github.com/ignorecomply/consensus/scenario"
	"github.com/ignorecomply/consensus/scenarios"
)

// FuzzScenarioDecode throws arbitrary bytes at the strict decoder: it must
// never panic, and everything it accepts must re-encode and decode to a
// stable representation (the golden round-trip property, fuzzed).
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(validSpecFuzzSeed))
	for _, name := range scenarios.Names() {
		data, err := scenarios.Read(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"schema": 1, "name": "x", "rule": {"name": "voter"}, "params": {"n": "2^4"}}`))
	f.Add([]byte(`{"schema": 1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(groupedSpecFuzzSeed))
	f.Add([]byte(expectSpecFuzzSeed))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.DecodeBytes(data)
		if err != nil {
			return
		}
		enc1, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		s2, err := scenario.DecodeBytes(enc1)
		if err != nil {
			t.Fatalf("accepted spec does not re-decode: %v\nencoding: %s", err, enc1)
		}
		enc2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("unstable round trip:\nfirst  %s\nsecond %s", enc1, enc2)
		}
	})
}

// FuzzExpectEval drives the full checked pipeline — expansion, grouped
// execution, expectation evaluation — over fuzzed (seed, workers, round
// budget). It must never panic, and the report must not depend on the
// worker count.
func FuzzExpectEval(f *testing.F) {
	f.Add(uint64(11), uint8(1), uint8(5))
	f.Add(uint64(0), uint8(4), uint8(1))
	f.Add(uint64(1<<63), uint8(3), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, workers uint8, budget uint8) {
		spec := `{
			"schema": 1,
			"name": "fuzz-eval",
			"params": {"n": 50},
			"replicas": 2,
			"engine": "agents",
			"rule": {"name": "3-majority"},
			"nodes": [
				{"name": "gen", "count": 30, "init": {"generator": "random-assignment", "k": 3}},
				{"name": "frozen", "color": 9, "stubborn": true}
			],
			"stop": {"max_rounds": ` + strconv.Itoa(int(budget%16)+1) + `},
			"expect": [
				{"rounds": {"max": 4}, "converged": {"min_fraction": 1}},
				{"messages": {"min": 1}, "almost_consensus": {"min_fraction": 0.99}}
			]
		}`
		s, err := scenario.DecodeBytes([]byte(spec))
		if err != nil {
			t.Fatalf("fuzz spec must decode: %v", err)
		}
		run := func(workers int) (string, string) {
			tbl, report, err := scenario.RunChecked(context.Background(), s,
				scenario.Params{Seed: seed, Scale: scenario.Quick, Workers: workers})
			if tbl == nil {
				t.Fatalf("no table: %v", err)
			}
			errStr := ""
			if err != nil {
				errStr = err.Error()
			}
			enc, jerr := json.Marshal(report)
			if jerr != nil {
				t.Fatalf("report must marshal: %v", jerr)
			}
			return errStr, string(enc)
		}
		w := int(workers%8) + 1
		err1, rep1 := run(w)
		err2, rep2 := run(1)
		if err1 != err2 {
			t.Fatalf("workers=%d vs 1 changed the verdict:\n%s\nvs\n%s", w, err1, err2)
		}
		if rep1 != rep2 {
			t.Fatalf("workers=%d vs 1 changed the report:\n%s\nvs\n%s", w, rep1, rep2)
		}
	})
}

const groupedSpecFuzzSeed = `{
	"schema": 1,
	"name": "fuzz-groups",
	"params": {"n": 128},
	"engine": "agents",
	"rule": {"name": "3-majority"},
	"nodes": [
		{"name": "main", "count": "n - 8", "init": {"generator": "balanced", "k": 3}},
		{"name": "holdouts", "color": 2, "stubborn": true}
	],
	"stop": {"max_rounds": 40},
	"expect": [
		{"name": "no consensus", "converged": {"min_fraction": 0}, "rounds": {"max": 40}}
	]
}`

const expectSpecFuzzSeed = `{
	"schema": 1,
	"name": "fuzz-expect",
	"params": {"n": 64},
	"sweep": [{"name": "k", "values": [2, 4]}],
	"replicas": 2,
	"rule": {"name": "3-majority"},
	"init": {"generator": "balanced", "k": "k"},
	"stop": {"max_rounds": "100 * n"},
	"expect": [
		{
			"name": "fast and unanimous",
			"match": {},
			"where": "k <= 4",
			"rounds": {"max_mean": "10 * log(n)", "max": "100 * n"},
			"converged": {"min_fraction": 1},
			"winner": {"valid": true},
			"almost_consensus": {"min_fraction": 0.5}
		},
		{"messages": {"min": 0}}
	]
}`

const validSpecFuzzSeed = `{
	"schema": 1,
	"name": "fuzz-seed",
	"params": {"n": {"quick": 64, "full": 256}},
	"sweep": [{"name": "k", "values": [2, "n/4"]}],
	"replicas": "if(k <= 2, 2, 1)",
	"rule": {"name": "h-majority", "h": 3},
	"init": {"generator": "balanced", "k": "k"},
	"stop": {"max_rounds": "10 * n", "when": {"name": "colors-at-most", "value": 1}},
	"metrics": {"color_times": [4, 1], "trace_every": 5}
}`
