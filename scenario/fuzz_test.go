package scenario_test

import (
	"encoding/json"
	"testing"

	"github.com/ignorecomply/consensus/scenario"
	"github.com/ignorecomply/consensus/scenarios"
)

// FuzzScenarioDecode throws arbitrary bytes at the strict decoder: it must
// never panic, and everything it accepts must re-encode and decode to a
// stable representation (the golden round-trip property, fuzzed).
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(validSpecFuzzSeed))
	for _, name := range scenarios.Names() {
		data, err := scenarios.Read(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"schema": 1, "name": "x", "rule": {"name": "voter"}, "params": {"n": "2^4"}}`))
	f.Add([]byte(`{"schema": 1}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.DecodeBytes(data)
		if err != nil {
			return
		}
		enc1, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		s2, err := scenario.DecodeBytes(enc1)
		if err != nil {
			t.Fatalf("accepted spec does not re-decode: %v\nencoding: %s", err, enc1)
		}
		enc2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("unstable round trip:\nfirst  %s\nsecond %s", enc1, enc2)
		}
	})
}

const validSpecFuzzSeed = `{
	"schema": 1,
	"name": "fuzz-seed",
	"params": {"n": {"quick": 64, "full": 256}},
	"sweep": [{"name": "k", "values": [2, "n/4"]}],
	"replicas": "if(k <= 2, 2, 1)",
	"rule": {"name": "h-majority", "h": 3},
	"init": {"generator": "balanced", "k": "k"},
	"stop": {"max_rounds": "10 * n", "when": {"name": "colors-at-most", "value": 1}},
	"metrics": {"color_times": [4, 1], "trace_every": 5}
}`
