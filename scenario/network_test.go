package scenario_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/ignorecomply/consensus/scenario"
)

// networkSpec is a minimal correct network scenario the mutation tests
// start from.
const networkSpec = `{
	"schema": 1,
	"name": "network-test",
	"params": {"n": 96},
	"sweep": [{"name": "loss", "values": [0, 0.2]}],
	"replicas": 2,
	"rule": {"name": "3-majority"},
	"network": {
		"delay": 1,
		"jitter": 1,
		"loss": "loss",
		"retry_after": 2,
		"partitions": [{"from": 0, "until": 4, "groups": 2}]
	},
	"init": {"generator": "balanced", "k": 4},
	"stop": {"max_rounds": "200 * n"}
}`

// TestNetworkSpecResolves: the network section decodes, implies the
// cluster engine, and resolves every quantity per cell.
func TestNetworkSpecResolves(t *testing.T) {
	s, err := scenario.DecodeBytes([]byte(networkSpec))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := s.Expand(scenario.Params{Seed: 1, Scale: scenario.Quick})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 { // 2 loss cells × 2 replicas
		t.Fatalf("got %d runs, want 4", len(specs))
	}
	for _, rs := range specs {
		if rs.Engine != scenario.EngineCluster {
			t.Fatalf("network section resolved to engine %v, want cluster", rs.Engine)
		}
		net := rs.Network
		if net == nil {
			t.Fatal("no resolved network")
		}
		if net.Delay != 1 || net.Jitter != 1 || net.RetryAfter != 2 {
			t.Fatalf("resolved network %+v", net)
		}
		if want := rs.Vars["loss"]; net.Loss != want {
			t.Fatalf("loss = %v, want axis value %v", net.Loss, want)
		}
		if len(net.Partitions) != 1 || net.Partitions[0].Until != 4 || net.Partitions[0].Groups != 2 {
			t.Fatalf("resolved partitions %+v", net.Partitions)
		}
	}
}

// TestNetworkSpecStrictDecoding: unknown fields anywhere in the network
// section are rejected, and every invalid field fails with an error that
// names it.
func TestNetworkSpecStrictDecoding(t *testing.T) {
	mutate := func(old, new string) string { return strings.Replace(networkSpec, old, new, 1) }
	t.Run("unknown fields", func(t *testing.T) {
		for _, src := range []string{
			mutate(`"delay"`, `"delya"`),
			mutate(`"retry_after"`, `"retry-after"`),
			mutate(`"until"`, `"till"`),
		} {
			if _, err := scenario.DecodeBytes([]byte(src)); err == nil {
				t.Errorf("decode accepted unknown network field in %s", src)
			} else if !strings.Contains(err.Error(), "unknown field") {
				t.Errorf("unknown-field error = %v", err)
			}
		}
	})
	validate := []struct {
		name, src, wantSub string
	}{
		{
			name:    "network with non-cluster engine",
			src:     mutate(`"rule": {"name": "3-majority"},`, `"rule": {"name": "3-majority"}, "engine": "agents",`),
			wantSub: "implies the cluster engine",
		},
		{
			name:    "network with topology",
			src:     mutate(`"rule": {"name": "3-majority"},`, `"rule": {"name": "3-majority"}, "topology": {"name": "ring"},`),
			wantSub: "pick one",
		},
		{
			name:    "partition without a window",
			src:     mutate(`{"from": 0, "until": 4, "groups": 2}`, `{"from": 0, "groups": 2}`),
			wantSub: "network.partitions[0].until",
		},
		{
			name:    "unparsable delay expression",
			src:     mutate(`"delay": 1`, `"delay": "1 +"`),
			wantSub: "network.delay",
		},
	}
	for _, tc := range validate {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scenario.DecodeBytes([]byte(tc.src))
			if err == nil {
				t.Fatalf("validation accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	expand := []struct {
		name, src, wantSub string
	}{
		{
			name:    "loss out of range",
			src:     mutate(`"loss": "loss"`, `"loss": 1`),
			wantSub: "network.loss",
		},
		{
			name:    "negative jitter",
			src:     mutate(`"jitter": 1`, `"jitter": -1`),
			wantSub: "network.jitter",
		},
		{
			name:    "zero retry",
			src:     mutate(`"retry_after": 2`, `"retry_after": 0`),
			wantSub: "network.retry_after",
		},
		{
			name:    "inverted partition window",
			src:     mutate(`"until": 4`, `"until": 0`),
			wantSub: "network.partitions[0]",
		},
		{
			name:    "single partition group",
			src:     mutate(`"groups": 2`, `"groups": 1`),
			wantSub: "network.partitions[0].groups",
		},
	}
	for _, tc := range expand {
		t.Run(tc.name, func(t *testing.T) {
			s, err := scenario.DecodeBytes([]byte(tc.src))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			_, err = s.Expand(scenario.Params{Seed: 1, Scale: scenario.Quick})
			if err == nil {
				t.Fatalf("expansion accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestNetworkScenarioDeterministic executes the network scenario end to
// end twice and requires byte-identical tables — the determinism contract
// now extends to the message-passing engine.
func TestNetworkScenarioDeterministic(t *testing.T) {
	s, err := scenario.DecodeBytes([]byte(networkSpec))
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		tbl, err := scenario.Run(context.Background(), s, scenario.Params{Seed: 7, Scale: scenario.Quick, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("network scenario not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), "2/2") {
		t.Fatalf("replicas did not converge:\n%s", a)
	}
}
