package scenario

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Table is a suite's reduced output: the rows/series a paper claim (or any
// user-defined aggregate) is about, plus free-form notes (fit slopes,
// verdicts). It is the shape the reproduction harness has always produced;
// reducers aggregate executed scenarios into it.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = FormatFloat(x)
		case int:
			row[i] = strconv.Itoa(x)
		case bool:
			if x {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n  claim: %s\n", t.ID, t.Title, t.Claim); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, col := range t.Columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, col)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table (header + rows) as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// FormatFloat renders floats the way tables do: integers without decimals,
// small magnitudes with enough precision to be meaningful.
func FormatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	abs := x
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 100:
		return strconv.FormatFloat(x, 'f', 1, 64)
	case abs >= 0.01:
		return strconv.FormatFloat(x, 'f', 3, 64)
	default:
		return strconv.FormatFloat(x, 'g', 3, 64)
	}
}
