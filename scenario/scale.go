package scenario

import "fmt"

// Scale selects the experiment budget a scenario resolves its
// scale-dependent quantities against.
type Scale int

// Experiment budgets. Quick keeps the full suite in CI-sized time; Full is
// the scale EXPERIMENTS.md reports.
const (
	Quick Scale = iota + 1
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale parses a scale name ("quick" or "full").
func ParseScale(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want quick or full)", name)
	}
}
