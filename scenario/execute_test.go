package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/ignorecomply/consensus/internal/config"
	"github.com/ignorecomply/consensus/internal/core"
	"github.com/ignorecomply/consensus/internal/rng"
	"github.com/ignorecomply/consensus/internal/rules"
	"github.com/ignorecomply/consensus/internal/sim"
)

func decodeT(t *testing.T, src string) *Scenario {
	t.Helper()
	s, err := DecodeBytes([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quickParams(workers int) Params {
	return Params{Seed: 11, Scale: Quick, Workers: workers}
}

// TestSuiteDeterministicAcrossWorkers pins the determinism contract:
// worker-pool size must never change results.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "det",
		"params": {"n": 300},
		"sweep": [{"name": "k", "values": [2, 4, 8]}],
		"replicas": 4,
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": "k"},
		"stop": {"max_rounds": "50 * n"}
	}`)
	var tables []string
	for _, workers := range []int{1, 4} {
		tbl, err := Run(context.Background(), s, quickParams(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		tables = append(tables, buf.String())
	}
	if tables[0] != tables[1] {
		t.Fatalf("workers changed results:\n1 worker:\n%s\n4 workers:\n%s", tables[0], tables[1])
	}
}

// TestSuiteMatchesRunnerReplicas pins the compatibility contract behind
// the golden reproduction: a single-cell, single-group scenario produces
// bit-identical per-replica results to Runner.RunReplicas on the same
// seed, because both derive replica streams in the same order.
func TestSuiteMatchesRunnerReplicas(t *testing.T) {
	const (
		seed     = uint64(23)
		n        = 400
		replicas = 6
	)
	s := decodeT(t, `{
		"schema": 1, "name": "compat",
		"params": {"n": 400},
		"replicas": 6,
		"rule": {"name": "2-choices"},
		"init": {"generator": "singleton"},
		"metrics": {"color_times": [16, 1]}
	}`)
	suite, err := ExecuteSuite(context.Background(), s, Params{Seed: seed, Scale: Quick, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.NewFactoryRunner(
		func() core.Rule { return rules.NewTwoChoices() },
		sim.WithColorTimes(16, 1),
		sim.WithRNG(rng.New(seed))).
		RunReplicas(context.Background(), config.Singleton(n), replicas, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := suite.Cells[0].Groups[0].Results
	if len(got) != len(direct) {
		t.Fatalf("replica counts differ: %d vs %d", len(got), len(direct))
	}
	for i := range direct {
		if got[i].Rounds != direct[i].Rounds || got[i].WinnerLabel != direct[i].WinnerLabel {
			t.Fatalf("replica %d differs: scenario (rounds=%d winner=%d) vs runner (rounds=%d winner=%d)",
				i, got[i].Rounds, got[i].WinnerLabel, direct[i].Rounds, direct[i].WinnerLabel)
		}
		for _, kappa := range []int{16, 1} {
			if got[i].ColorTimes[kappa] != direct[i].ColorTimes[kappa] {
				t.Fatalf("replica %d T^%d differs: %d vs %d",
					i, kappa, got[i].ColorTimes[kappa], direct[i].ColorTimes[kappa])
			}
		}
	}
}

// TestSuiteStructureAndOrdering checks the cell/group skeleton: row-major
// cells (first axis slowest), groups in spec order, per-cell replica
// expressions.
func TestSuiteStructureAndOrdering(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "structure",
		"params": {"n": 120},
		"sweep": [
			{"name": "mode", "strings": ["alpha", "beta"]},
			{"name": "k", "values": [2, 3]}
		],
		"replicas": "if(k == 2, 2, 1)",
		"init": {"generator": "balanced", "k": "k"},
		"stop": {"max_rounds": "100 * n"},
		"runs": [
			{"id": "fast", "rule": {"name": "3-majority"}},
			{"id": "slow", "rule": {"name": "voter"}}
		]
	}`)
	suite, err := ExecuteSuite(context.Background(), s, quickParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(suite.Cells))
	}
	wantOrder := []struct {
		mode     string
		k        int
		replicas int
	}{
		{mode: "alpha", k: 2, replicas: 2},
		{mode: "alpha", k: 3, replicas: 1},
		{mode: "beta", k: 2, replicas: 2},
		{mode: "beta", k: 3, replicas: 1},
	}
	for i, cell := range suite.Cells {
		want := wantOrder[i]
		if cell.Strings["mode"] != want.mode || int(cell.Vars["k"]) != want.k || cell.Replicas != want.replicas {
			t.Fatalf("cell %d = (mode=%s k=%v replicas=%d), want %+v",
				i, cell.Strings["mode"], cell.Vars["k"], cell.Replicas, want)
		}
		if len(cell.Groups) != 2 || cell.Groups[0].ID != "fast" || cell.Groups[1].ID != "slow" {
			t.Fatalf("cell %d groups wrong: %+v", i, cell.Groups)
		}
		for _, g := range cell.Groups {
			if len(g.Results) != want.replicas {
				t.Fatalf("cell %d group %s has %d results, want %d", i, g.ID, len(g.Results), want.replicas)
			}
			if g.Start == nil || g.Start.N() != 120 {
				t.Fatalf("cell %d group %s start config missing", i, g.ID)
			}
		}
	}
}

// TestAdversarialScenario runs the §5 regime through the scenario layer,
// with the strategy drawn from a string axis.
func TestAdversarialScenario(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "adversarial",
		"params": {"n": 600, "k": 3},
		"sweep": [{"name": "strategy", "strings": ["boost-runner-up", "inject-invalid"]}],
		"replicas": 2,
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": "k"},
		"stop": {"max_rounds": "200 * n"},
		"adversary": {"name": "$strategy", "budget": 1, "epsilon": 0.05, "window": 10}
	}`)
	suite, err := ExecuteSuite(context.Background(), s, quickParams(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range suite.Cells {
		for _, res := range cell.Groups[0].Results {
			if !res.Stable {
				t.Fatalf("strategy %s: run did not stabilize: %+v", cell.Strings["strategy"], res)
			}
			if !res.WinnerValid {
				t.Fatalf("strategy %s: a 1-node adversary stole the win", cell.Strings["strategy"])
			}
		}
	}
}

// TestStopPredicateScenario checks the named stop predicates end to end.
func TestStopPredicateScenario(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "predicate",
		"params": {"n": 500},
		"rule": {"name": "2-choices"},
		"init": {"generator": "singleton"},
		"stop": {"max_rounds": "100 * n", "when": {"name": "max-support-exceeds", "value": 12}}
	}`)
	suite, err := ExecuteSuite(context.Background(), s, quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	res := suite.Cells[0].Groups[0].Results[0]
	if !res.Converged {
		t.Fatal("predicate never fired")
	}
	if _, maxSup := res.Final.Max(); maxSup <= 12 {
		t.Fatalf("stopped with max support %d, predicate needs > 12", maxSup)
	}
}

// TestPerNodeEngines runs the agents and graph engines through the
// scenario layer.
func TestPerNodeEngines(t *testing.T) {
	for _, src := range []string{
		`{"schema": 1, "name": "agents-engine", "params": {"n": 90},
		  "engine": "agents", "rule": {"name": "3-majority"},
		  "init": {"generator": "balanced", "k": 3}, "stop": {"max_rounds": "200 * n"}}`,
		`{"schema": 1, "name": "graph-engine", "params": {"n": 64},
		  "topology": {"name": "complete"}, "rule": {"name": "voter"},
		  "init": {"generator": "balanced", "k": 2}, "stop": {"max_rounds": "500 * n"}}`,
	} {
		s := decodeT(t, src)
		suite, err := ExecuteSuite(context.Background(), s, quickParams(2))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !suite.Cells[0].Groups[0].Results[0].Converged {
			t.Fatalf("%s did not converge", s.Name)
		}
	}
}

// TestCustomScenarioRouting: custom kind dispatches to its adapter and
// refuses the suite executor.
func TestCustomScenarioRouting(t *testing.T) {
	RegisterAdapter("test-adapter", func(_ context.Context, s *Scenario, p Params) (*Table, error) {
		n, err := s.ParamInt("n", p.Scale)
		if err != nil {
			return nil, err
		}
		tbl := s.NewTable()
		tbl.Columns = []string{"n"}
		tbl.AddRow(n)
		return tbl, nil
	})
	s := decodeT(t, `{
		"schema": 1, "name": "custom-routing", "kind": "custom",
		"adapter": "test-adapter", "params": {"n": {"quick": 10, "full": 100}}
	}`)
	tbl, err := Run(context.Background(), s, quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0][0] != "10" {
		t.Fatalf("adapter table: %+v", tbl.Rows)
	}
	if _, err := ExecuteSuite(context.Background(), s, quickParams(1)); err == nil ||
		!strings.Contains(err.Error(), "custom scenarios have no suite") {
		t.Fatalf("ExecuteSuite on custom scenario: err = %v", err)
	}

	missing := decodeT(t, `{
		"schema": 1, "name": "missing-adapter", "kind": "custom",
		"adapter": "never-registered"
	}`)
	if _, err := Run(context.Background(), missing, quickParams(1)); err == nil ||
		!strings.Contains(err.Error(), `no adapter "never-registered"`) {
		t.Fatalf("missing adapter: err = %v", err)
	}
}

// TestUnknownReducer: a suite naming an unregistered reducer fails with
// the registered names in the message.
func TestUnknownReducer(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "unknown-reducer", "params": {"n": 20},
		"rule": {"name": "voter"}, "reducer": "nope"
	}`)
	if _, err := Run(context.Background(), s, quickParams(1)); err == nil ||
		!strings.Contains(err.Error(), `no reducer "nope"`) {
		t.Fatalf("unknown reducer: err = %v", err)
	}
}

// TestContextCancellation: a canceled context aborts the suite.
func TestContextCancellation(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "cancel", "params": {"n": 2000},
		"replicas": 4, "rule": {"name": "voter"}, "init": {"generator": "singleton"}
	}`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteSuite(ctx, s, quickParams(2)); err == nil {
		t.Fatal("canceled context did not abort the suite")
	}
}

// TestConcurrentRunOnSharedScenario: a decoded Scenario is immutable, so
// concurrent Expand/Run on the same value must be safe (the CI race job
// runs this under -race) and produce identical tables.
func TestConcurrentRunOnSharedScenario(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "shared", "params": {"n": 150},
		"sweep": [{"name": "k", "values": [2, "n/50"]}],
		"replicas": 2,
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": "k"},
		"stop": {"max_rounds": "100 * n"}
	}`)
	const goroutines = 4
	rendered := make([]string, goroutines)
	errs := make([]error, goroutines)
	done := make(chan int)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- g }()
			tbl, err := Run(context.Background(), s, quickParams(2))
			if err != nil {
				errs[g] = err
				return
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				errs[g] = err
				return
			}
			rendered[g] = buf.String()
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if rendered[g] != rendered[0] {
			t.Fatalf("goroutine %d produced a different table", g)
		}
	}
}

// TestSummaryReducerRejectsMismatchedColumns: a custom table.columns
// header with the wrong arity fails loudly instead of silently
// misaligning rows.
func TestSummaryReducerRejectsMismatchedColumns(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "bad-columns", "params": {"n": 40},
		"table": {"columns": ["a", "b"]},
		"rule": {"name": "3-majority"}, "init": {"generator": "balanced", "k": 2},
		"stop": {"max_rounds": "100 * n"}
	}`)
	if _, err := Run(context.Background(), s, quickParams(1)); err == nil ||
		!strings.Contains(err.Error(), "table.columns has 2") {
		t.Fatalf("mismatched summary columns: err = %v", err)
	}
}

// TestSummaryReducerStringAxes: the default reducer renders string axes.
func TestSummaryReducerStringAxes(t *testing.T) {
	s := decodeT(t, `{
		"schema": 1, "name": "summary-strings", "params": {"n": 80},
		"sweep": [{"name": "who", "strings": ["left", "right"]}],
		"rule": {"name": "3-majority"}, "init": {"generator": "balanced", "k": 2},
		"stop": {"max_rounds": "100 * n"}
	}`)
	tbl, err := Run(context.Background(), s, quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "left" || tbl.Rows[1][0] != "right" {
		t.Fatalf("summary rows: %+v", tbl.Rows)
	}
}
