package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func renderT(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestNodesHomogeneousNormalization: a homogeneous population expressed
// as one node group is the ungrouped expansion — the single plain
// generator group normalizes to the same RunSpec, so the whole suite is
// bit-exact at a fixed (seed, workers).
func TestNodesHomogeneousNormalization(t *testing.T) {
	ungrouped := `{
		"schema": 1, "name": "homo",
		"params": {"n": 240},
		"sweep": [{"name": "k", "values": [2, 4]}],
		"replicas": 3,
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": "k"},
		"stop": {"max_rounds": "100 * n"}
	}`
	grouped := `{
		"schema": 1, "name": "homo",
		"params": {"n": 240},
		"sweep": [{"name": "k", "values": [2, 4]}],
		"replicas": 3,
		"rule": {"name": "3-majority"},
		"nodes": [{"name": "all", "init": {"generator": "balanced", "k": "k"}}],
		"stop": {"max_rounds": "100 * n"}
	}`
	su, sg := decodeT(t, ungrouped), decodeT(t, grouped)
	specsU, err := su.Expand(quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	specsG, err := sg.Expand(quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specsU, specsG) {
		t.Fatalf("grouped expansion differs from ungrouped:\n%+v\nvs\n%+v", specsU, specsG)
	}
	tu, err := Run(context.Background(), su, quickParams(3))
	if err != nil {
		t.Fatal(err)
	}
	tg, err := Run(context.Background(), sg, quickParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if renderT(t, tu) != renderT(t, tg) {
		t.Fatalf("tables differ:\n%s\nvs\n%s", renderT(t, tu), renderT(t, tg))
	}
}

// TestNodesComposition: fixed colors, remainder counts and color offsets
// compose the expected start configuration.
func TestNodesComposition(t *testing.T) {
	src := `{
		"schema": 1, "name": "compose",
		"params": {"n": 100},
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "zeros", "count": 60, "color": 0},
			{"name": "ones", "color": 1}
		],
		"stop": {"max_rounds": 1}
	}`
	suite, err := ExecuteSuite(context.Background(), decodeT(t, src), quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	start := suite.Cells[0].Groups[0].Start
	if start.N() != 100 || start.Slots() != 2 {
		t.Fatalf("start: n=%d slots=%d", start.N(), start.Slots())
	}
	counts := map[int]int{}
	for s := 0; s < start.Slots(); s++ {
		counts[start.Label(s)] = start.Count(s)
	}
	if counts[0] != 60 || counts[1] != 40 {
		t.Fatalf("composed counts: %v", counts)
	}

	// Color offsets give generator groups disjoint opinion spaces.
	offset := `{
		"schema": 1, "name": "offset",
		"params": {"n": 80},
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "low", "count": 40, "init": {"generator": "balanced", "k": 2}},
			{"name": "high", "init": {"generator": "balanced", "k": 2}, "color_offset": 10}
		],
		"stop": {"max_rounds": 1}
	}`
	suite, err = ExecuteSuite(context.Background(), decodeT(t, offset), quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	start = suite.Cells[0].Groups[0].Start
	labels := map[int]int{}
	for s := 0; s < start.Slots(); s++ {
		labels[start.Label(s)] = start.Count(s)
	}
	want := map[int]int{0: 20, 1: 20, 10: 20, 11: 20}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("offset labels: %v, want %v", labels, want)
	}
}

// TestNodesSharedColorMerges: a fixed-color group and a generator group
// supporting the same label merge into one slot, and a corrupted group's
// exclusive colors — and only those — are invalid.
func TestNodesSharedColorMerges(t *testing.T) {
	src := `{
		"schema": 1, "name": "merge",
		"params": {"n": 90},
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "gen", "count": 60, "init": {"generator": "balanced", "k": 3}},
			{"name": "boost", "count": 10, "color": 2, "corrupted": true},
			{"name": "planted", "color": 9, "corrupted": true}
		],
		"stop": {"max_rounds": 1}
	}`
	suite, err := ExecuteSuite(context.Background(), decodeT(t, src), quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	g := suite.Cells[0].Groups[0]
	labels := map[int]int{}
	for s := 0; s < g.Start.Slots(); s++ {
		labels[g.Start.Label(s)] = g.Start.Count(s)
	}
	// Color 2 holds honest 20 + corrupted 10 in one slot.
	want := map[int]int{0: 20, 1: 20, 2: 30, 9: 20}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("merged labels: %v, want %v", labels, want)
	}
	// Color 2 has honest support, so only 9 is invalid.
	if got := g.grouped.invalid; !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("invalid labels: %v, want [9]", got)
	}
	// The assignment covers every node, aligned with Nodes() order.
	if len(g.grouped.assign) != 90 {
		t.Fatalf("assignment length %d", len(g.grouped.assign))
	}
}

// TestNodesStubbornDissenter: a stubborn minority blocks consensus
// through the scenario layer.
func TestNodesStubbornDissenter(t *testing.T) {
	src := `{
		"schema": 1, "name": "dissent",
		"params": {"n": 200},
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "majority", "count": 190, "color": 0},
			{"name": "dissenters", "color": 1, "stubborn": true}
		],
		"stop": {"max_rounds": 300}
	}`
	suite, err := ExecuteSuite(context.Background(), decodeT(t, src), quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	res := suite.Cells[0].Groups[0].Results[0]
	if res.Converged {
		t.Fatalf("converged despite stubborn dissenters: %+v", res)
	}
	if got := res.Final.CountsView()[1]; got < 10 {
		t.Fatalf("dissenter color has %d supporters, want >= 10", got)
	}
}

// TestNodesPerGroupRules: groups running different rules execute and stay
// deterministic across worker counts.
func TestNodesPerGroupRules(t *testing.T) {
	src := `{
		"schema": 1, "name": "mixed-rules",
		"params": {"n": 200},
		"replicas": 2,
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "majority", "count": 100, "init": {"generator": "balanced", "k": 4}},
			{"name": "voters", "init": {"generator": "balanced", "k": 4}, "rule": {"name": "voter"}}
		],
		"stop": {"max_rounds": "200 * n"}
	}`
	var tables []string
	for _, workers := range []int{1, 4} {
		tbl, err := Run(context.Background(), decodeT(t, src), quickParams(workers))
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, renderT(t, tbl))
	}
	if tables[0] != tables[1] {
		t.Fatalf("worker count changed grouped results:\n%s\nvs\n%s", tables[0], tables[1])
	}
}

// TestNodesJoinRound: a group that joins after the horizon holds its
// opinion; the active majority adopts it.
func TestNodesJoinRound(t *testing.T) {
	src := `{
		"schema": 1, "name": "latejoin",
		"params": {"n": 100},
		"engine": "agents",
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "active", "count": 10, "color": 0},
			{"name": "late", "color": 1, "join_round": 1048576}
		],
		"stop": {"max_rounds": 2000}
	}`
	suite, err := ExecuteSuite(context.Background(), decodeT(t, src), quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	res := suite.Cells[0].Groups[0].Results[0]
	if !res.Converged || res.WinnerLabel != 1 {
		t.Fatalf("want convergence to the held color 1, got converged=%v winner=%d", res.Converged, res.WinnerLabel)
	}
}

// TestNodesRunGroupOverride: a run group's nodes section replaces the
// scenario-level init wholesale.
func TestNodesRunGroupOverride(t *testing.T) {
	src := `{
		"schema": 1, "name": "override",
		"params": {"n": 100},
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": 2},
		"stop": {"max_rounds": "100 * n"},
		"runs": [
			{"id": "plain"},
			{"id": "fixed", "nodes": [
				{"name": "zeros", "count": 70, "color": 0},
				{"name": "ones", "color": 1}
			]}
		]
	}`
	suite, err := ExecuteSuite(context.Background(), decodeT(t, src), quickParams(2))
	if err != nil {
		t.Fatal(err)
	}
	cell := suite.Cells[0]
	if cell.Groups[0].grouped != nil {
		t.Fatal("plain group picked up the run-level nodes section")
	}
	if cell.Groups[1].grouped == nil {
		t.Fatal("fixed group lost its nodes section")
	}
	counts := map[int]int{}
	start := cell.Groups[1].Start
	for s := 0; s < start.Slots(); s++ {
		counts[start.Label(s)] = start.Count(s)
	}
	if counts[0] != 70 || counts[1] != 30 {
		t.Fatalf("override start: %v", counts)
	}
}

// TestNodesValidation: malformed nodes sections fail with field-qualified
// errors at decode or expansion time.
func TestNodesValidation(t *testing.T) {
	base := func(nodes, extra string) string {
		return `{
			"schema": 1, "name": "v",
			"params": {"n": 100},
			"rule": {"name": "3-majority"},
			` + extra + `"nodes": ` + nodes + `
		}`
	}
	decodeCases := []struct {
		name, src, wantErr string
	}{
		{
			name:    "duplicate-name",
			src:     base(`[{"name": "a", "count": 50, "color": 0}, {"name": "a", "color": 1}]`, ""),
			wantErr: `nodes[1].name: duplicate group name "a"`,
		},
		{
			name:    "two-remainders",
			src:     base(`[{"name": "a", "color": 0}, {"name": "b", "color": 1}]`, ""),
			wantErr: `nodes[1].count: at most one group may omit count`,
		},
		{
			name:    "color-and-init",
			src:     base(`[{"name": "a", "color": 0, "init": {"generator": "balanced", "k": 2}}]`, ""),
			wantErr: `nodes[0]: a group needs exactly one of color`,
		},
		{
			name:    "neither-color-nor-init",
			src:     base(`[{"name": "a"}]`, ""),
			wantErr: `nodes[0]: a group needs exactly one of color`,
		},
		{
			name:    "offset-on-fixed-color",
			src:     base(`[{"name": "a", "color": 0, "color_offset": 5}]`, ""),
			wantErr: `nodes[0].color_offset: color_offset shifts generator labels`,
		},
		{
			name:    "stubborn-with-rule",
			src:     base(`[{"name": "a", "color": 0, "stubborn": true, "rule": {"name": "voter"}}]`, `"engine": "agents", `),
			wantErr: `nodes[0]: a stubborn group never updates; drop its rule override`,
		},
		{
			name:    "stubborn-with-join",
			src:     base(`[{"name": "a", "color": 0, "stubborn": true, "join_round": 5}]`, `"engine": "agents", `),
			wantErr: `nodes[0]: a stubborn group never updates; drop its join_round`,
		},
		{
			name:    "nodes-and-init",
			src:     base(`[{"name": "a", "color": 0}]`, `"init": {"generator": "balanced", "k": 2}, `),
			wantErr: `nodes: a nodes section composes the whole start configuration; drop the init section`,
		},
		{
			name:    "behavior-on-batch-engine",
			src:     base(`[{"name": "a", "color": 0, "stubborn": true}]`, `"engine": "batch", `),
			wantErr: `behavior overrides (rule, stubborn, join_round) need the agents engine; engine is "batch"`,
		},
		{
			name:    "behavior-with-topology",
			src:     base(`[{"name": "a", "color": 0, "stubborn": true}]`, `"topology": {"name": "complete"}, `),
			wantErr: `behavior overrides (rule, stubborn, join_round) need the agents engine; drop the topology/network section`,
		},
		{
			name:    "unknown-generator",
			src:     base(`[{"name": "a", "init": {"generator": "nope"}}]`, ""),
			wantErr: `nodes[0].init.generator: unknown generator "nope"`,
		},
		{
			name:    "bad-group-name",
			src:     base(`[{"name": "Bad Name", "color": 0}]`, ""),
			wantErr: `nodes[0].name: group name "Bad Name" must be a lowercase slug`,
		},
	}
	for _, tc := range decodeCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBytes([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}

	expandCases := []struct {
		name, src, wantErr string
	}{
		{
			name:    "counts-exceed-n",
			src:     base(`[{"name": "a", "count": 80, "color": 0}, {"name": "b", "color": 1}, {"name": "c", "count": 30, "color": 2}]`, ""),
			wantErr: "the remainder is -10",
		},
		{
			name:    "counts-mismatch",
			src:     base(`[{"name": "a", "count": 30, "color": 0}, {"name": "b", "count": 30, "color": 1}]`, ""),
			wantErr: "group counts sum to 60, want n = 100",
		},
	}
	for _, tc := range expandCases {
		t.Run(tc.name, func(t *testing.T) {
			s := decodeT(t, tc.src)
			_, err := s.Expand(quickParams(1))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestNodesGeneratorStreamOrder: grouped randomized generators are
// deterministic and seed-sensitive (each group draws from its own derived
// stream).
func TestNodesGeneratorStreamOrder(t *testing.T) {
	src := `{
		"schema": 1, "name": "streams",
		"params": {"n": 400},
		"rule": {"name": "3-majority"},
		"nodes": [
			{"name": "a", "count": 200, "init": {"generator": "random-assignment", "k": 8}},
			{"name": "b", "init": {"generator": "random-assignment", "k": 8}, "color_offset": 100}
		],
		"stop": {"max_rounds": 1}
	}`
	startCounts := func(seed uint64) map[int]int {
		s := decodeT(t, src)
		suite, err := ExecuteSuite(context.Background(), s, Params{Seed: seed, Scale: Quick, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := map[int]int{}
		start := suite.Cells[0].Groups[0].Start
		for sl := 0; sl < start.Slots(); sl++ {
			if start.Count(sl) > 0 {
				out[start.Label(sl)] = start.Count(sl)
			}
		}
		return out
	}
	a1, a2 := startCounts(7), startCounts(7)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed, different grouped start: %v vs %v", a1, a2)
	}
	b := startCounts(8)
	if reflect.DeepEqual(a1, b) {
		t.Fatal("different seeds produced the identical randomized grouped start")
	}
	// The two groups' label spaces stay disjoint.
	for label := range a1 {
		if label >= 8 && label < 100 {
			t.Fatalf("label %d outside both groups' spaces", label)
		}
	}
}
