package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Params configures one execution of a scenario.
type Params struct {
	// Seed drives all randomness; identical spec + Params reproduce
	// identical tables.
	Seed uint64
	// Scale selects the Quick or Full budgets of every scale-dependent
	// quantity.
	Scale Scale
	// Workers bounds the executor's worker pool (0 = GOMAXPROCS). Workers
	// never affects results, only wall-clock time.
	Workers int
	// Progress, when non-nil, observes suite execution: one suite-start
	// event, one run-done event per completed run, and a cell-done event
	// after each cell's last run. Events arrive in expansion order
	// regardless of worker scheduling (out-of-order completions are
	// buffered), so for a fixed (spec, seed, scale) the event sequence is
	// identical at any worker count. The callback is never invoked
	// concurrently and never affects results; see ProgressFunc for the
	// blocking caveat.
	Progress ProgressFunc
}

// DefaultParams returns quick-scale parameters with a fixed seed.
func DefaultParams() Params {
	return Params{Seed: 1, Scale: Quick, Workers: runtime.GOMAXPROCS(0)}
}

// RunSpec is one fully resolved run: a single replica of one run group in
// one sweep cell. Expand returns them in execution order — cells
// row-major (first axis slowest), groups in spec order, replicas 0..R-1 —
// and the executor derives one random stream per spec in exactly this
// order, which is what makes a suite reproducible regardless of
// scheduling.
type RunSpec struct {
	// Cell, Group and Replica locate the run in the suite.
	Cell, Group, Replica int
	// GroupID is the run group's display id.
	GroupID string
	// Replicas is the total replica count of this cell × group.
	Replicas int
	// Vars are the cell's numeric bindings (params, axes, derived).
	Vars map[string]float64
	// Strings are the cell's string-axis bindings.
	Strings map[string]string

	// N is the population size (the required "n" binding).
	N int
	// Rule is the resolved update rule.
	Rule ResolvedRule
	// Engine is the resolved execution backend.
	Engine Engine
	// Parallelism is the per-run engine sharding (0 = executor default,
	// which is 1: the replica pool already saturates the cores).
	Parallelism int
	// Topology is the resolved interaction graph (graph engine only).
	Topology *ResolvedTopology
	// Network is the resolved network model (cluster engine only).
	Network *ResolvedNetwork
	// FastForward is the resolved fast-forward tuning (hybrid engine
	// only; nil on the hybrid engine means default tuning).
	FastForward *ResolvedFastForward
	// Init is the resolved start-configuration generator. Ignored when
	// Nodes is non-empty: the groups compose the whole start.
	Init ResolvedInit
	// Nodes are the resolved heterogeneous node groups, if any. A single
	// plain generator group normalizes back to Init, so Nodes is non-empty
	// only for genuinely heterogeneous populations.
	Nodes []ResolvedNodeGroup
	// MaxRounds bounds the run (0 = the Runner default).
	MaxRounds int
	// TargetColors stops at ≤ this many colors (0 = the Runner default).
	TargetColors int
	// StopWhen is the resolved stop predicate, if any.
	StopWhen *ResolvedPredicate
	// Adversary is the resolved §5 adversary, if any.
	Adversary *ResolvedAdversary
	// ColorTimes are the κ targets to record T^κ for, in spec order.
	ColorTimes []int
	// TraceEvery samples a trace point every this many rounds (0 = off).
	TraceEvery int
}

// ResolvedRule is a rule with concrete parameters.
type ResolvedRule struct {
	Name string
	H    int
	Beta float64
}

// ResolvedTopology is a topology with concrete parameters.
type ResolvedTopology struct {
	Name   string
	Rows   int // torus (0 = square)
	Degree int // random-regular
}

// ResolvedNetwork is a network model with concrete parameters (ticks of
// the engine's virtual clock).
type ResolvedNetwork struct {
	Delay      int
	Jitter     int
	Loss       float64
	RetryAfter int
	Partitions []ResolvedPartition
}

// ResolvedPartition is one scheduled communication split.
type ResolvedPartition struct {
	From, Until int
	Groups      int
}

// ResolvedFastForward is a hybrid-engine fast-forward tuning with
// concrete parameters; zero fields select the engine defaults.
type ResolvedFastForward struct {
	MinStretch      int
	MaxStretch      int
	Delta           float64
	GapFactor       float64
	DriftFactor     float64
	ExtinctionFloor float64
}

// ResolvedInit is a start-configuration generator with concrete
// parameters.
type ResolvedInit struct {
	Generator  string
	K          int
	Bias       int
	A          int
	MaxSupport int
	S          float64
}

// ResolvedPredicate is a stop predicate with its concrete threshold.
type ResolvedPredicate struct {
	Name  string
	Value int
}

// ResolvedAdversary is a §5 adversary schedule with concrete parameters.
type ResolvedAdversary struct {
	Name    string
	Budget  int
	Epsilon float64
	Window  int
}

// Expand resolves the scenario into the ordered list of concrete runs for
// the given parameters. Expansion is pure: identical (spec, Params) yield
// identical RunSpecs.
//
//consensus:strictwalk
func (s *Scenario) Expand(p Params) ([]RunSpec, error) {
	if s.Kind == KindCustom {
		return nil, fmt.Errorf("scenario %q: custom scenarios have no runs to expand; call Run", s.Name)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if p.Scale != Quick && p.Scale != Full {
		return nil, fmt.Errorf("scenario %q: params scale must be Quick or Full", s.Name)
	}

	// Constants first: parameters may not reference other variables.
	baseEnv := make(map[string]float64, len(s.Params))
	for _, name := range paramNames(s.Params) {
		q := s.Params[name]
		v, err := q.Eval(p.Scale, nil)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: params.%s: %w", s.Name, name, err)
		}
		baseEnv[name] = v
	}

	groups := s.effectiveGroups()
	var specs []RunSpec
	cellIndex := 0
	var walk func(axis int, env map[string]float64, strs map[string]string) error
	walk = func(axis int, env map[string]float64, strs map[string]string) error {
		if axis < len(s.Sweep) {
			ax := &s.Sweep[axis]
			if len(ax.Strings) > 0 {
				for _, sv := range ax.Strings {
					strs[ax.Name] = sv
					if err := walk(axis+1, env, strs); err != nil {
						return err
					}
				}
				delete(strs, ax.Name)
				return nil
			}
			values := ax.Values
			if p.Scale == Full {
				values = append(append([]Quantity{}, ax.Values...), ax.FullValues...)
			}
			for vi := range values {
				// The axis's own binding from the previous lattice point
				// must not leak into its value expressions.
				delete(env, ax.Name)
				v, err := values[vi].Eval(p.Scale, env)
				if err != nil {
					return fmt.Errorf("scenario %q: sweep axis %q value %d: %w", s.Name, ax.Name, vi, err)
				}
				env[ax.Name] = v
				if err := walk(axis+1, env, strs); err != nil {
					return err
				}
			}
			delete(env, ax.Name)
			return nil
		}

		// One cell: snapshot the bindings, add derived values, resolve
		// every group.
		cellEnv := make(map[string]float64, len(env)+len(s.Derived))
		for k, v := range env {
			cellEnv[k] = v
		}
		cellStrs := make(map[string]string, len(strs))
		for k, v := range strs {
			cellStrs[k] = v
		}
		for i := range s.Derived {
			d := &s.Derived[i]
			v, err := d.Value.Eval(p.Scale, cellEnv)
			if err != nil {
				return fmt.Errorf("scenario %q: derived.%s: %w", s.Name, d.Name, err)
			}
			cellEnv[d.Name] = v
		}
		n, err := requiredN(cellEnv)
		if err != nil {
			return fmt.Errorf("scenario %q: cell %d: %w", s.Name, cellIndex, err)
		}
		replicas := 1
		if s.Replicas.IsSet() {
			replicas, err = s.Replicas.EvalInt(p.Scale, cellEnv)
			if err != nil {
				return fmt.Errorf("scenario %q: replicas: %w", s.Name, err)
			}
		}
		if replicas < 1 {
			return fmt.Errorf("scenario %q: cell %d: replicas must be >= 1, got %d", s.Name, cellIndex, replicas)
		}
		for gi := range groups {
			rg, err := s.resolveGroup(&groups[gi], p.Scale, n, cellEnv, cellStrs)
			if err != nil {
				return fmt.Errorf("scenario %q: cell %d, group %q: %w", s.Name, cellIndex, groups[gi].ID, err)
			}
			for rep := 0; rep < replicas; rep++ {
				spec := rg
				spec.Cell = cellIndex
				spec.Group = gi
				spec.GroupID = groups[gi].ID
				spec.Replica = rep
				spec.Replicas = replicas
				spec.Vars = cellEnv
				spec.Strings = cellStrs
				specs = append(specs, spec)
			}
		}
		cellIndex++
		return nil
	}
	if err := walk(0, baseEnv, map[string]string{}); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario %q: expansion produced no runs (empty sweep axis?)", s.Name)
	}
	return specs, nil
}

// requiredN extracts the mandatory population binding.
func requiredN(env map[string]float64) (int, error) {
	v, ok := env["n"]
	if !ok {
		return 0, fmt.Errorf("no binding for \"n\": define the population size as a param, sweep axis or derived value")
	}
	n := int(v)
	if float64(n) != v || n < 1 {
		return 0, fmt.Errorf("\"n\" must be a positive integer, got %v", v)
	}
	return n, nil
}

// resolveGroup evaluates one run group's quantities against a cell's
// bindings.
func (s *Scenario) resolveGroup(g *RunGroup, scale Scale, n int, env map[string]float64, strs map[string]string) (RunSpec, error) {
	var spec RunSpec
	spec.N = n

	// Rule.
	spec.Rule.Name = g.Rule.Name
	if g.Rule.H.IsSet() {
		h, err := g.Rule.H.EvalInt(scale, env)
		if err != nil {
			return spec, fmt.Errorf("rule.h: %w", err)
		}
		spec.Rule.H = h
	}
	if g.Rule.Beta.IsSet() {
		beta, err := g.Rule.Beta.Eval(scale, env)
		if err != nil {
			return spec, fmt.Errorf("rule.beta: %w", err)
		}
		spec.Rule.Beta = beta
	}
	if g.Rule.Name == "h-majority" && spec.Rule.H < 1 {
		return spec, fmt.Errorf("rule.h: h-majority needs h >= 1 (set rule.h)")
	}

	// Engine, topology, network and fast-forward.
	switch {
	case g.Topology != nil:
		if g.Network != nil {
			return spec, fmt.Errorf("engine: a network section implies the cluster engine, a topology the graph engine; pick one")
		}
		if g.FastForward != nil {
			return spec, fmt.Errorf("engine: a fast_forward section implies the hybrid engine, a topology the graph engine; pick one")
		}
		if g.Engine != "" && g.Engine != "graph" {
			return spec, fmt.Errorf("engine: topology implies the graph engine, got %q", g.Engine)
		}
		spec.Engine = EngineGraph
		topo := &ResolvedTopology{Name: g.Topology.Name}
		var err error
		if topo.Rows, err = evalIntOr(&g.Topology.Rows, scale, env, 0, "topology.rows"); err != nil {
			return spec, err
		}
		if topo.Degree, err = evalIntOr(&g.Topology.Degree, scale, env, 4, "topology.degree"); err != nil {
			return spec, err
		}
		spec.Topology = topo
	case g.Network != nil:
		if g.Engine != "" && g.Engine != "cluster" {
			return spec, fmt.Errorf("engine: a network section implies the cluster engine, got %q", g.Engine)
		}
		if g.FastForward != nil {
			return spec, fmt.Errorf("engine: a fast_forward section implies the hybrid engine, a network section the cluster engine; pick one")
		}
		spec.Engine = EngineCluster
		net, err := resolveNetwork(g.Network, scale, env)
		if err != nil {
			return spec, err
		}
		spec.Network = net
	case g.FastForward != nil:
		if g.Engine != "" && g.Engine != "hybrid" {
			return spec, fmt.Errorf("engine: a fast_forward section implies the hybrid engine, got %q", g.Engine)
		}
		spec.Engine = EngineHybrid
		ff, err := resolveFastForward(g.FastForward, scale, env)
		if err != nil {
			return spec, err
		}
		spec.FastForward = ff
	case g.Engine == "" || g.Engine == "batch":
		spec.Engine = EngineBatch
	case g.Engine == "agents":
		spec.Engine = EngineAgents
	case g.Engine == "cluster":
		spec.Engine = EngineCluster
	case g.Engine == "hybrid":
		spec.Engine = EngineHybrid
	case g.Engine == "graph":
		return spec, fmt.Errorf("engine: the graph engine needs a topology section")
	default:
		return spec, fmt.Errorf("engine: unknown engine %q", g.Engine)
	}

	var err error
	if spec.Parallelism, err = evalIntOr(g.Parallelism, scale, env, 0, "parallelism"); err != nil {
		return spec, err
	}
	if spec.Parallelism < 0 {
		return spec, fmt.Errorf("parallelism: must be >= 0, got %d", spec.Parallelism)
	}

	// Init (default: the singleton/leader-election configuration).
	spec.Init = ResolvedInit{Generator: "singleton", K: n, S: 1}
	if g.Init != nil {
		spec.Init.Generator = g.Init.Generator
		if spec.Init.K, err = evalIntOr(&g.Init.K, scale, env, n, "init.k"); err != nil {
			return spec, err
		}
		if spec.Init.Bias, err = evalIntOr(&g.Init.Bias, scale, env, 0, "init.bias"); err != nil {
			return spec, err
		}
		if spec.Init.A, err = evalIntOr(&g.Init.A, scale, env, 0, "init.a"); err != nil {
			return spec, err
		}
		if spec.Init.MaxSupport, err = evalIntOr(&g.Init.MaxSupport, scale, env, 0, "init.max_support"); err != nil {
			return spec, err
		}
		if spec.Init.S, err = evalFloatOr(&g.Init.S, scale, env, 1, "init.s"); err != nil {
			return spec, err
		}
	}

	// Node groups (mutually exclusive with init — enforced at validation).
	// A single plain generator group covering all n nodes normalizes back
	// to the homogeneous init, so the grouped path only runs for genuinely
	// heterogeneous populations.
	if len(g.Nodes) > 0 {
		rgs, init, err := resolveNodes(g.Nodes, scale, n, env)
		if err != nil {
			return spec, err
		}
		if init != nil {
			spec.Init = *init
		} else {
			spec.Nodes = rgs
			for gi := range rgs {
				if rgs[gi].hasBehavior() && spec.Engine != EngineAgents {
					return spec, fmt.Errorf("nodes[%d]: behavior overrides (rule, stubborn, join_round) need the agents engine", gi)
				}
			}
		}
	}

	// Stop.
	if g.Stop != nil {
		if spec.MaxRounds, err = evalIntOr(&g.Stop.MaxRounds, scale, env, 0, "stop.max_rounds"); err != nil {
			return spec, err
		}
		if spec.TargetColors, err = evalIntOr(&g.Stop.TargetColors, scale, env, 0, "stop.target_colors"); err != nil {
			return spec, err
		}
		if g.Stop.When != nil {
			value, err := g.Stop.When.Value.EvalInt(scale, env)
			if err != nil {
				return spec, fmt.Errorf("stop.when.value: %w", err)
			}
			spec.StopWhen = &ResolvedPredicate{Name: g.Stop.When.Name, Value: value}
		}
	}

	// Adversary.
	if g.Adversary != nil {
		name := g.Adversary.Name
		if axis, ok := strings.CutPrefix(name, "$"); ok {
			sv, bound := strs[axis]
			if !bound {
				return spec, fmt.Errorf("adversary.name: %q is not bound by a string axis in this cell", name)
			}
			name = sv
		}
		adv := &ResolvedAdversary{Name: name}
		if adv.Budget, err = evalIntOr(&g.Adversary.Budget, scale, env, 0, "adversary.budget"); err != nil {
			return spec, err
		}
		if adv.Epsilon, err = evalFloatOr(&g.Adversary.Epsilon, scale, env, 0, "adversary.epsilon"); err != nil {
			return spec, err
		}
		if adv.Window, err = evalIntOr(&g.Adversary.Window, scale, env, 0, "adversary.window"); err != nil {
			return spec, err
		}
		spec.Adversary = adv
	}

	// Metrics.
	if g.Metrics != nil {
		for j := range g.Metrics.ColorTimes {
			kappa, err := g.Metrics.ColorTimes[j].EvalInt(scale, env)
			if err != nil {
				return spec, fmt.Errorf("metrics.color_times[%d]: %w", j, err)
			}
			spec.ColorTimes = append(spec.ColorTimes, kappa)
		}
		if spec.TraceEvery, err = evalIntOr(&g.Metrics.TraceEvery, scale, env, 0, "metrics.trace_every"); err != nil {
			return spec, err
		}
	}
	return spec, nil
}

// resolveNetwork evaluates a network section against a cell's bindings,
// range-checking every field so a bad spec fails at expansion with the
// field's path instead of inside the engine.
func resolveNetwork(ns *NetworkSpec, scale Scale, env map[string]float64) (*ResolvedNetwork, error) {
	net := &ResolvedNetwork{}
	var err error
	if net.Delay, err = evalIntOr(&ns.Delay, scale, env, 0, "network.delay"); err != nil {
		return nil, err
	}
	if net.Delay < 0 {
		return nil, fmt.Errorf("network.delay: must be >= 0, got %d", net.Delay)
	}
	if net.Jitter, err = evalIntOr(&ns.Jitter, scale, env, 0, "network.jitter"); err != nil {
		return nil, err
	}
	if net.Jitter < 0 {
		return nil, fmt.Errorf("network.jitter: must be >= 0, got %d", net.Jitter)
	}
	if net.Loss, err = evalFloatOr(&ns.Loss, scale, env, 0, "network.loss"); err != nil {
		return nil, err
	}
	if net.Loss < 0 || net.Loss >= 1 {
		return nil, fmt.Errorf("network.loss: must be in [0, 1), got %v", net.Loss)
	}
	if net.RetryAfter, err = evalIntOr(&ns.RetryAfter, scale, env, 1, "network.retry_after"); err != nil {
		return nil, err
	}
	if net.RetryAfter < 1 {
		return nil, fmt.Errorf("network.retry_after: must be >= 1, got %d", net.RetryAfter)
	}
	for j := range ns.Partitions {
		pt := &ns.Partitions[j]
		var rp ResolvedPartition
		path := func(sub string) string { return fmt.Sprintf("network.partitions[%d].%s", j, sub) }
		if rp.From, err = evalIntOr(&pt.From, scale, env, 0, path("from")); err != nil {
			return nil, err
		}
		if rp.Until, err = evalIntOr(&pt.Until, scale, env, 0, path("until")); err != nil {
			return nil, err
		}
		if rp.From < 0 || rp.Until <= rp.From {
			return nil, fmt.Errorf("%s: need 0 <= from < until, got [%d, %d)", path("window"), rp.From, rp.Until)
		}
		if rp.Groups, err = evalIntOr(&pt.Groups, scale, env, 2, path("groups")); err != nil {
			return nil, err
		}
		if rp.Groups < 2 {
			return nil, fmt.Errorf("%s: must be >= 2, got %d", path("groups"), rp.Groups)
		}
		net.Partitions = append(net.Partitions, rp)
	}
	return net, nil
}

// resolveFastForward evaluates a fast_forward section against a cell's
// bindings, range-checking every field so a bad spec fails at expansion
// with the field's path instead of inside the engine.
func resolveFastForward(fs *FastForwardSpec, scale Scale, env map[string]float64) (*ResolvedFastForward, error) {
	ff := &ResolvedFastForward{}
	var err error
	if ff.MinStretch, err = evalIntOr(&fs.MinStretch, scale, env, 0, "fast_forward.min_stretch"); err != nil {
		return nil, err
	}
	if ff.MinStretch < 0 {
		return nil, fmt.Errorf("fast_forward.min_stretch: must be >= 0, got %d", ff.MinStretch)
	}
	if ff.MaxStretch, err = evalIntOr(&fs.MaxStretch, scale, env, 0, "fast_forward.max_stretch"); err != nil {
		return nil, err
	}
	if ff.MaxStretch < 0 {
		return nil, fmt.Errorf("fast_forward.max_stretch: must be >= 0, got %d", ff.MaxStretch)
	}
	if ff.Delta, err = evalFloatOr(&fs.Delta, scale, env, 0, "fast_forward.delta"); err != nil {
		return nil, err
	}
	if ff.Delta < 0 || ff.Delta >= 1 {
		return nil, fmt.Errorf("fast_forward.delta: must be in (0, 1), got %v", ff.Delta)
	}
	if ff.GapFactor, err = evalFloatOr(&fs.GapFactor, scale, env, 0, "fast_forward.gap_factor"); err != nil {
		return nil, err
	}
	if ff.GapFactor < 0 {
		return nil, fmt.Errorf("fast_forward.gap_factor: must be >= 0, got %v", ff.GapFactor)
	}
	if ff.DriftFactor, err = evalFloatOr(&fs.DriftFactor, scale, env, 0, "fast_forward.drift_factor"); err != nil {
		return nil, err
	}
	if ff.DriftFactor < 0 {
		return nil, fmt.Errorf("fast_forward.drift_factor: must be >= 0, got %v", ff.DriftFactor)
	}
	if ff.ExtinctionFloor, err = evalFloatOr(&fs.ExtinctionFloor, scale, env, 0, "fast_forward.extinction_floor"); err != nil {
		return nil, err
	}
	if ff.ExtinctionFloor < 0 {
		return nil, fmt.Errorf("fast_forward.extinction_floor: must be >= 0, got %v", ff.ExtinctionFloor)
	}
	return ff, nil
}

// VarNames returns the sorted numeric variable names a cell binds —
// handy for diagnostics.
func (r *RunSpec) VarNames() []string {
	names := make([]string, 0, len(r.Vars))
	for k := range r.Vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
