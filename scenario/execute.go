package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/ignorecomply/consensus/internal/adversary"
	"github.com/ignorecomply/consensus/internal/cluster"
	"github.com/ignorecomply/consensus/internal/config"
	"github.com/ignorecomply/consensus/internal/graph"
	"github.com/ignorecomply/consensus/internal/rng"
	"github.com/ignorecomply/consensus/internal/rules"
	"github.com/ignorecomply/consensus/internal/sim"
)

// Engine values, re-exported for RunSpec consumers.
const (
	EngineBatch   = sim.EngineBatch
	EngineAgents  = sim.EngineAgents
	EngineGraph   = sim.EngineGraph
	EngineCluster = sim.EngineCluster
	EngineHybrid  = sim.EngineHybrid
)

// SuiteResult is an executed suite: every run's Result, grouped by sweep
// cell and run group in expansion order.
type SuiteResult struct {
	// Scenario is the executed spec.
	Scenario *Scenario
	// Params are the execution parameters.
	Params Params
	// Cells hold the per-cell results in expansion order.
	Cells []*CellResult
}

// CellResult is one sweep cell's executed runs.
type CellResult struct {
	// Index is the cell's expansion position.
	Index int
	// Vars are the cell's numeric bindings (params, axes, derived).
	Vars map[string]float64
	// Strings are the cell's string-axis bindings.
	Strings map[string]string
	// Replicas is the per-group replica count of this cell.
	Replicas int
	// Groups hold the run groups in spec order.
	Groups []*GroupResult
}

// GroupResult is one run group's executed replicas within a cell.
type GroupResult struct {
	// ID is the group's display id.
	ID string
	// Spec is the resolved run (replica 0's RunSpec).
	Spec *RunSpec
	// Start is the start configuration every replica ran from.
	Start *Config
	// Results are the replica results in replica order.
	Results []*Result

	// graph is the group's interaction topology (graph engine only).
	graph graph.Graph
	// grouped carries the per-node group assignment and invalid labels of
	// a heterogeneous start (nodes section only).
	grouped *groupedStart
}

// ExecuteSuite expands the scenario and runs every cell × group × replica
// over a bounded worker pool, aggregating the unified Results.
//
// Determinism: all random streams are derived from rng.New(p.Seed) on the
// calling goroutine in expansion order — for each cell, for each group:
// first the start-configuration stream (only when the generator or
// topology is randomized), then one stream per replica via Derive(0),
// Derive(1), …, Derive(R-1). Workers only change scheduling, never
// results. This derive order is exactly the order the hand-coded
// reproduction harness used, which is why a scenario file reproduces a
// pre-scenario experiment bit-identically at a fixed seed.
//
//consensus:longrun
func ExecuteSuite(ctx context.Context, s *Scenario, p Params) (*SuiteResult, error) {
	if s.Kind == KindCustom {
		return nil, fmt.Errorf("scenario %q: custom scenarios have no suite; call Run", s.Name)
	}
	specs, err := s.Expand(p)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Assemble the result skeleton and derive every stream in order.
	base := rng.New(p.Seed)
	suite := &SuiteResult{Scenario: s, Params: p}
	type job struct {
		spec    *RunSpec
		stream  *rng.RNG
		start   *config.Config
		g       graph.Graph
		grouped *groupedStart
		slot    **Result
		runName string
	}
	jobs := make([]job, 0, len(specs))
	var cur *CellResult
	var curGroup *GroupResult
	for i := range specs {
		spec := &specs[i]
		if cur == nil || cur.Index != spec.Cell {
			cur = &CellResult{Index: spec.Cell, Vars: spec.Vars, Strings: spec.Strings, Replicas: spec.Replicas}
			suite.Cells = append(suite.Cells, cur)
			curGroup = nil
		}
		if curGroup == nil || len(cur.Groups) <= spec.Group {
			curGroup = &GroupResult{ID: spec.GroupID, Spec: spec}
			// Build the start configuration (and topology) once per cell ×
			// group; randomized generators draw from their own stream,
			// derived before the group's replica streams.
			var genRNG *rng.RNG
			needsRNG := config.NeedsRNG(spec.Init.Generator) || (spec.Topology != nil && spec.Topology.Name == "random-regular")
			if len(spec.Nodes) > 0 {
				needsRNG = nodesNeedRNG(spec.Nodes) || (spec.Topology != nil && spec.Topology.Name == "random-regular")
			}
			if needsRNG {
				genRNG = base.Derive(^uint64(0))
			}
			start, grouped, err := buildStart(spec, genRNG)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: cell %d, group %q: %w", s.Name, spec.Cell, spec.GroupID, err)
			}
			curGroup.Start = start
			curGroup.grouped = grouped
			curGroup.Results = make([]*Result, spec.Replicas)
			cur.Groups = append(cur.Groups, curGroup)
			if spec.Topology != nil {
				g, err := buildTopology(spec, genRNG)
				if err != nil {
					return nil, fmt.Errorf("scenario %q: cell %d, group %q: %w", s.Name, spec.Cell, spec.GroupID, err)
				}
				curGroup.graph = g
			}
		}
		jobs = append(jobs, job{
			spec:    spec,
			stream:  base.Derive(uint64(spec.Replica)),
			start:   curGroup.Start,
			g:       curGroup.graph,
			grouped: curGroup.grouped,
			slot:    &curGroup.Results[spec.Replica],
			runName: fmt.Sprintf("cell %d, group %q, replica %d", spec.Cell, spec.GroupID, spec.Replica),
		})
	}

	var prog *progressTracker
	if p.Progress != nil {
		prog = newProgressTracker(p.Progress, s.Name, len(jobs), len(suite.Cells))
		for i := range jobs {
			prog.lastOfCell[i] = i == len(jobs)-1 || jobs[i+1].spec.Cell != jobs[i].spec.Cell
		}
		prog.start()
	}

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				j := &jobs[idx]
				res, err := executeRun(ctx, j.spec, j.start, j.g, j.grouped, j.stream)
				*j.slot = res
				errs[idx] = err
				if prog != nil {
					var ev *ProgressEvent
					if err == nil && res != nil {
						ev = &ProgressEvent{
							Kind: ProgressRunDone, Scenario: s.Name,
							Total: len(jobs), Cells: len(suite.Cells),
							Cell: j.spec.Cell, Group: j.spec.Group, Replica: j.spec.Replica,
							GroupID: j.spec.GroupID,
							Rounds:  res.Rounds, Converged: res.Converged,
						}
					}
					prog.done(idx, ev)
				}
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case queue <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(queue)
	wg.Wait()

	// A context cancelled only after the last run finished must not
	// discard the fully-computed suite (the suite-level mirror of
	// Runner.RunReplicas' completed-work contract): report cancellation
	// only when it actually cost a run.
	complete := true
	for i := range jobs {
		if errs[i] != nil || *jobs[i].slot == nil {
			complete = false
			break
		}
	}
	if complete {
		return suite, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %s: %w", s.Name, jobs[i].runName, err)
		}
	}
	return nil, fmt.Errorf("scenario %q: suite incomplete without a cause", s.Name)
}

// executeRun performs one replica through the Runner.
func executeRun(ctx context.Context, spec *RunSpec, start *config.Config, g graph.Graph, grouped *groupedStart, stream *rng.RNG) (*Result, error) {
	factory, err := rules.Spec{Name: spec.Rule.Name, H: spec.Rule.H, Beta: spec.Rule.Beta}.Factory()
	if err != nil {
		return nil, err
	}
	opts := []sim.Option{sim.WithRNG(stream)}
	if grouped != nil {
		behaviorOpts, err := buildBehaviors(spec, grouped)
		if err != nil {
			return nil, err
		}
		opts = append(opts, behaviorOpts...)
	}
	// Mirror Runner.RunReplicas: each replica's engine defaults to
	// sequential — the suite's worker pool already saturates the cores.
	par := spec.Parallelism
	if par == 0 {
		par = 1
	}
	opts = append(opts, sim.WithParallelism(par))
	if spec.MaxRounds > 0 {
		opts = append(opts, sim.WithMaxRounds(spec.MaxRounds))
	}
	if spec.TargetColors > 0 {
		opts = append(opts, sim.WithTargetColors(spec.TargetColors))
	}
	if len(spec.ColorTimes) > 0 {
		opts = append(opts, sim.WithColorTimes(spec.ColorTimes...))
	}
	if spec.TraceEvery > 0 {
		opts = append(opts, sim.WithTrace(spec.TraceEvery))
	}
	if g != nil {
		opts = append(opts, sim.WithGraph(g))
	} else if spec.Engine != sim.EngineBatch {
		opts = append(opts, sim.WithEngine(spec.Engine))
	}
	if spec.Network != nil {
		opts = append(opts, sim.WithNetwork(buildNetwork(spec.Network)))
	}
	if spec.FastForward != nil {
		opts = append(opts, sim.WithFastForward(sim.FastForward{
			MinStretch:      spec.FastForward.MinStretch,
			MaxStretch:      spec.FastForward.MaxStretch,
			Delta:           spec.FastForward.Delta,
			GapFactor:       spec.FastForward.GapFactor,
			DriftFactor:     spec.FastForward.DriftFactor,
			ExtinctionFloor: spec.FastForward.ExtinctionFloor,
		}))
	}
	if spec.StopWhen != nil {
		pred, ok := lookupStopPredicate(spec.StopWhen.Name)
		if !ok {
			return nil, fmt.Errorf("unknown stop predicate %q", spec.StopWhen.Name)
		}
		opts = append(opts, sim.WithStopWhen(pred(spec.StopWhen.Value)))
	}
	if spec.Adversary != nil {
		// Fresh instance per replica: §5 strategies may carry run-local
		// state (InjectInvalid caches its injected slot).
		adv, err := adversary.ByName(spec.Adversary.Name, spec.Adversary.Budget)
		if err != nil {
			return nil, err
		}
		opts = append(opts, sim.WithAdversary(adv, spec.Adversary.Epsilon, spec.Adversary.Window))
	}
	return sim.NewFactoryRunner(factory, opts...).Run(ctx, start)
}

// buildNetwork constructs the cluster engine's network model from a
// resolved network section (already range-checked at expansion).
func buildNetwork(rn *ResolvedNetwork) cluster.Model {
	net := &cluster.Net{
		Delay:  int64(rn.Delay),
		Jitter: int64(rn.Jitter),
		Loss:   rn.Loss,
		Retry:  int64(rn.RetryAfter),
	}
	for _, pt := range rn.Partitions {
		net.Partitions = append(net.Partitions, cluster.Partition{
			From:   int64(pt.From),
			Until:  int64(pt.Until),
			Groups: pt.Groups,
		})
	}
	return net
}

// buildStart generates the group's start configuration: the homogeneous
// generator, or — with a nodes section — the grouped composition with its
// per-node assignment and invalid labels.
func buildStart(spec *RunSpec, genRNG *rng.RNG) (*config.Config, *groupedStart, error) {
	if len(spec.Nodes) > 0 {
		return buildGroupedStart(spec, genRNG)
	}
	c, err := config.Generate(spec.Init.Generator, config.GenArgs{
		N: spec.N, K: spec.Init.K, Bias: spec.Init.Bias, A: spec.Init.A,
		MaxSupport: spec.Init.MaxSupport, S: spec.Init.S, RNG: genRNG,
	})
	return c, nil, err
}

// buildBehaviors maps a heterogeneous start to the sim layer's options:
// the per-node behavior table (only when some group overrides behavior)
// and the §5 invalid labels of corrupted groups.
func buildBehaviors(spec *RunSpec, grouped *groupedStart) ([]sim.Option, error) {
	var opts []sim.Option
	needBehaviors := false
	for i := range spec.Nodes {
		if spec.Nodes[i].hasBehavior() {
			needBehaviors = true
			break
		}
	}
	if needBehaviors {
		groups := make([]sim.NodeBehavior, len(spec.Nodes))
		for i := range spec.Nodes {
			ng := &spec.Nodes[i]
			nb := sim.NodeBehavior{Stubborn: ng.Stubborn, JoinRound: ng.JoinRound}
			if ng.Rule != nil {
				f, err := rules.Spec{Name: ng.Rule.Name, H: ng.Rule.H, Beta: ng.Rule.Beta}.Factory()
				if err != nil {
					return nil, fmt.Errorf("nodes[%d] (%s): %w", i, ng.Name, err)
				}
				nb.Factory = f
			}
			groups[i] = nb
		}
		opts = append(opts, sim.WithNodeBehaviors(grouped.assign, groups))
	}
	if len(grouped.invalid) > 0 {
		opts = append(opts, sim.WithInvalidLabels(grouped.invalid...))
	}
	return opts, nil
}

// buildTopology constructs the group's interaction graph.
func buildTopology(spec *RunSpec, genRNG *rng.RNG) (graph.Graph, error) {
	n := spec.N
	switch spec.Topology.Name {
	case "complete":
		return graph.NewComplete(n), nil
	case "ring":
		return graph.NewRing(n), nil
	case "star":
		return graph.NewStar(n), nil
	case "torus":
		rows := spec.Topology.Rows
		if rows == 0 {
			for rows*rows < n {
				rows++
			}
			if rows*rows != n {
				return nil, fmt.Errorf("topology torus: n=%d is not a perfect square; set topology.rows", n)
			}
		}
		if rows < 1 || n%rows != 0 {
			return nil, fmt.Errorf("topology torus: rows=%d does not divide n=%d", rows, n)
		}
		return graph.NewTorus(rows, n/rows), nil
	case "random-regular":
		g, err := graph.NewRandomRegular(n, spec.Topology.Degree, genRNG)
		if err != nil {
			return nil, fmt.Errorf("topology random-regular: %w", err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", spec.Topology.Name)
	}
}

// Run executes the scenario end to end and reduces it to its table: custom
// scenarios dispatch to their registered adapter, suites execute through
// ExecuteSuite and aggregate through the spec's reducer (default
// "summary").
func Run(ctx context.Context, s *Scenario, p Params) (*Table, error) {
	tbl, _, err := runScenario(ctx, s, p)
	return tbl, err
}

// runScenario is the shared execution path of Run and RunChecked: it
// returns the reduced table plus, for suites, the executed results the
// expect evaluator reads (nil for custom scenarios, which reduce inside
// their adapter).
func runScenario(ctx context.Context, s *Scenario, p Params) (*Table, *SuiteResult, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if s.Kind == KindCustom {
		adapter, ok := lookupAdapter(s.Adapter)
		if !ok {
			return nil, nil, fmt.Errorf("scenario %q: no adapter %q registered (registered: %v)",
				s.Name, s.Adapter, adapterNames())
		}
		tbl, err := adapter(ctx, s, p)
		return tbl, nil, err
	}
	suite, err := ExecuteSuite(ctx, s, p)
	if err != nil {
		return nil, nil, err
	}
	name := s.Reducer
	if name == "" {
		name = "summary"
	}
	reducer, ok := lookupReducer(name)
	if !ok {
		return nil, nil, fmt.Errorf("scenario %q: no reducer %q registered (registered: %v)",
			s.Name, name, reducerNames())
	}
	tbl, err := reducer(suite)
	return tbl, suite, err
}
