package scenario

import "sync"

// ProgressKind enumerates the suite progress event kinds.
type ProgressKind string

const (
	// ProgressSuiteStart is emitted once, before any run executes, with
	// the suite's totals.
	ProgressSuiteStart ProgressKind = "suite-start"
	// ProgressRunDone is emitted once per completed run, in expansion
	// order.
	ProgressRunDone ProgressKind = "run-done"
	// ProgressCellDone is emitted when a cell's last run completes, after
	// that run's ProgressRunDone.
	ProgressCellDone ProgressKind = "cell-done"
)

// ProgressEvent is one observation of suite execution. Events are emitted
// in expansion order — the deterministic cell-major order Expand defines —
// regardless of worker scheduling, so for a fixed (spec, seed, scale) the
// full event sequence is identical at any worker count. The sequence is:
// one suite-start, then per run one run-done (Done counting 1..Total),
// with a cell-done after the last run of each cell.
type ProgressEvent struct {
	// Kind is the event kind.
	Kind ProgressKind `json:"kind"`
	// Scenario names the executing spec.
	Scenario string `json:"scenario"`
	// Done and Total count completed runs over the whole suite.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cells is the suite's cell count.
	Cells int `json:"cells"`
	// Cell locates the event's sweep cell (-1 on suite-start), Group and
	// Replica the finished run within it (-1 except on run-done).
	Cell    int `json:"cell"`
	Group   int `json:"group"`
	Replica int `json:"replica"`
	// GroupID is the finished run's group display id (run-done only).
	GroupID string `json:"group_id,omitempty"`
	// Rounds and Converged summarize the finished run (run-done only).
	Rounds    int  `json:"rounds,omitempty"`
	Converged bool `json:"converged,omitempty"`
}

// ProgressFunc observes suite execution (Params.Progress). The executor
// never invokes it concurrently, and the callback must not block for
// long: workers flush completion events while holding the tracker's lock,
// so a stalled callback stalls the pool. Progress observation never
// affects results.
type ProgressFunc func(ProgressEvent)

// progressTracker reorders worker completions back into expansion order:
// a run finishing out of order is buffered until every earlier run has
// finished, then the ready prefix is flushed through the callback under
// one lock. This trades a little latency for a deterministic event
// sequence — the same determinism contract the results themselves obey.
type progressTracker struct {
	fn       ProgressFunc
	scenario string
	total    int
	cells    int

	mu sync.Mutex
	// events buffers one completion event per job, nil until the job
	// finishes (and nil forever for a failed job, which emits nothing —
	// the suite is about to abort with its error).
	events []*ProgressEvent
	ready  []bool
	// lastOfCell marks the jobs whose completion completes their cell.
	lastOfCell []bool
	next       int
}

func newProgressTracker(fn ProgressFunc, scenario string, total, cells int) *progressTracker {
	return &progressTracker{
		fn:         fn,
		scenario:   scenario,
		total:      total,
		cells:      cells,
		events:     make([]*ProgressEvent, total),
		ready:      make([]bool, total),
		lastOfCell: make([]bool, total),
	}
}

// start emits the suite-start event (called before any worker runs).
func (pt *progressTracker) start() {
	pt.fn(ProgressEvent{
		Kind: ProgressSuiteStart, Scenario: pt.scenario,
		Total: pt.total, Cells: pt.cells,
		Cell: -1, Group: -1, Replica: -1,
	})
}

// done records job idx's completion and flushes the ready prefix in
// expansion order. ev is nil for a failed run.
func (pt *progressTracker) done(idx int, ev *ProgressEvent) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.events[idx] = ev
	pt.ready[idx] = true
	for pt.next < pt.total && pt.ready[pt.next] {
		i := pt.next
		pt.next++
		e := pt.events[i]
		pt.events[i] = nil
		if e == nil {
			continue
		}
		e.Done = pt.next
		pt.fn(*e)
		if pt.lastOfCell[i] {
			pt.fn(ProgressEvent{
				Kind: ProgressCellDone, Scenario: pt.scenario,
				Done: pt.next, Total: pt.total, Cells: pt.cells,
				Cell: e.Cell, Group: -1, Replica: -1,
			})
		}
	}
}
