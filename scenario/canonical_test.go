package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ignorecomply/consensus/scenarios"
)

var updateHashes = flag.Bool("update-hashes", false, "rewrite testdata/scenario_hashes.json from the checked-in scenarios")

// TestCanonicalizeCosmeticInvariance: cache keys must survive cosmetic
// spec edits. Whitespace, member order, per-scale key order and number
// formatting all canonicalize away; any semantic edit changes the hash.
func TestCanonicalizeCosmeticInvariance(t *testing.T) {
	base := `{
		"schema": 1,
		"name": "canon-test",
		"params": {"n": 1000, "reps": {"quick": 2, "full": 8}},
		"rule": {"name": "3-majority"},
		"init": {"generator": "balanced", "k": "2"},
		"replicas": "reps"
	}`
	cosmetic := []string{
		// Whitespace and indentation collapsed.
		`{"schema":1,"name":"canon-test","params":{"n":1000,"reps":{"quick":2,"full":8}},"rule":{"name":"3-majority"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
		// Per-scale variant keys reordered.
		`{"schema":1,"name":"canon-test","params":{"n":1000,"reps":{"full":8,"quick":2}},"rule":{"name":"3-majority"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
		// Number formatting: 1e3 and 1000.0 mean 1000.
		`{"schema":1,"name":"canon-test","params":{"n":1e3,"reps":{"quick":2,"full":8}},"rule":{"name":"3-majority"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
		`{"schema":1,"name":"canon-test","params":{"n":1000.0,"reps":{"quick":2,"full":8}},"rule":{"name":"3-majority"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
	}
	semantic := []string{
		// Different population.
		`{"schema":1,"name":"canon-test","params":{"n":2000,"reps":{"quick":2,"full":8}},"rule":{"name":"3-majority"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
		// Different rule.
		`{"schema":1,"name":"canon-test","params":{"n":1000,"reps":{"quick":2,"full":8}},"rule":{"name":"2-choices"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
		// Different full-scale budget (quick runs are unaffected, but the
		// spec is a different experiment).
		`{"schema":1,"name":"canon-test","params":{"n":1000,"reps":{"quick":2,"full":9}},"rule":{"name":"3-majority"},"init":{"generator":"balanced","k":"2"},"replicas":"reps"}`,
	}

	hashOf := func(src string) string {
		t.Helper()
		s, err := DecodeBytes([]byte(src))
		if err != nil {
			t.Fatalf("decode: %v\nspec: %s", err, src)
		}
		h, err := Hash(s)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	want := hashOf(base)
	for i, src := range cosmetic {
		if got := hashOf(src); got != want {
			t.Errorf("cosmetic variant %d changed the hash: %s != %s", i, got, want)
		}
	}
	for i, src := range semantic {
		if got := hashOf(src); got == want {
			t.Errorf("semantic variant %d kept the hash %s; a different experiment must hash differently", i, want)
		}
	}
}

// TestCanonicalizeIsStable: canonical bytes are a fixed point — decoding
// the canonical form and canonicalizing again reproduces them, and they
// contain no null members.
func TestCanonicalizeIsStable(t *testing.T) {
	for _, name := range scenarios.Names() {
		data, err := scenarios.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := DecodeBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		canon, err := Canonicalize(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if strings.Contains(string(canon), "null") {
			t.Errorf("%s: canonical form contains null members:\n%s", name, canon)
		}
		s2, err := DecodeBytes(canon)
		if err != nil {
			t.Fatalf("%s: canonical form does not decode: %v\n%s", name, err, canon)
		}
		canon2, err := Canonicalize(s2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(canon) != string(canon2) {
			t.Errorf("%s: canonicalization is not a fixed point:\n%s\nvs\n%s", name, canon, canon2)
		}
	}
}

// TestScenarioHashesGolden pins the canonical hash of every checked-in
// scenario. A diff here means cache keys changed: either the spec was
// edited semantically (update the golden with -update-hashes and expect
// cold caches) or the canonicalization algorithm drifted (a bug — old
// and new servers would double-execute identical work).
func TestScenarioHashesGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "scenario_hashes.json")
	got := make(map[string]string)
	for _, name := range scenarios.Names() {
		data, err := scenarios.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := DecodeBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h, err := Hash(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = h
	}

	if *updateHashes {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-hashes): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, h := range got {
		if want[name] == "" {
			t.Errorf("%s: no golden hash pinned (regenerate with -update-hashes)", name)
			continue
		}
		if h != want[name] {
			t.Errorf("%s: hash %s differs from golden %s (cache keys changed; see the golden's contract)", name, h, want[name])
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden pins %s, which no longer exists", name)
		}
	}
}
