// Quickstart: run 3-Majority from the hardest start — every node with its
// own color — and watch it reach consensus in sublinear time (Theorem 4).
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	consensus "github.com/ignorecomply/consensus"
)

func main() {
	const n = 100_000
	start := consensus.SingletonConfig(n) // n nodes, n distinct colors

	runner := consensus.NewRunner(consensus.NewThreeMajority(),
		consensus.WithSeed(42),
		consensus.WithTrace(25))
	res, err := runner.Run(context.Background(), start)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("3-Majority on n=%d nodes, starting from %d colors\n", n, n)
	for _, tp := range res.Trace {
		fmt.Printf("  round %4d: %6d colors remain, leader holds %6d nodes\n",
			tp.Round, tp.Colors, tp.MaxSupport)
	}
	bound := math.Pow(n, 0.75) * math.Pow(math.Log(n), 7.0/8)
	fmt.Printf("consensus on color %d after %d rounds\n", res.WinnerLabel, res.Rounds)
	fmt.Printf("Theorem 4 scale n^(3/4)·log^(7/8)n ≈ %.0f — sublinear in n = %d\n", bound, n)
}
