// Hierarchy: Conjecture 1 says (h+1)-Majority is stochastically faster
// than h-Majority. The paper proves h ∈ {1,2,3} (Voter ≡ 1-Majority ≡
// 2-Majority ≼ 3-Majority, Lemma 2) and shows in Appendix B why its
// framework cannot settle the rest — this example measures the conjecture
// empirically, and reproduces the exact Appendix B obstruction via the
// dominance checker.
package main

import (
	"context"
	"fmt"
	"log"

	consensus "github.com/ignorecomply/consensus"
)

func main() {
	const (
		n        = 1024
		replicas = 8
		workers  = 4
	)
	base := consensus.NewRNG(99)
	start := consensus.SingletonConfig(n)

	fmt.Printf("h-Majority consensus times from %d colors (%d replicas):\n", n, replicas)
	for h := 1; h <= 6; h++ {
		h := h
		runner := consensus.NewFactoryRunner(
			func() consensus.Rule { return consensus.NewHMajority(h) },
			consensus.WithRNG(base))
		results, err := runner.RunReplicas(context.Background(), start, replicas, workers)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, res := range results {
			total += res.Rounds
		}
		fmt.Printf("  h=%d: mean %7.1f rounds\n", h, float64(total)/replicas)
	}

	// The Appendix B obstruction: 4-Majority does not *dominate*
	// 3-Majority in the Definition 2 sense, so Lemma 1 cannot prove the
	// hierarchy even though the times above decrease.
	high, err := consensus.NewConfig([]int{6, 6, 0, 0}) // x̃·12
	if err != nil {
		log.Fatal(err)
	}
	low, err := consensus.NewConfig([]int{6, 2, 2, 2}) // x·12
	if err != nil {
		log.Fatal(err)
	}
	fourMajority := consensus.NewHMajority(4)
	alphaHigh, err := fourMajority.AlphaExact(high)
	if err != nil {
		log.Fatal(err)
	}
	threeMajority := consensus.NewThreeMajority()
	alphaLow := threeMajority.Alpha(low, nil)
	fmt.Println("\nAppendix B obstruction (exact process functions):")
	fmt.Printf("  α^(4M)(1/2,1/2,0,0)     = %.4f (top entry 1/2)\n", alphaHigh)
	fmt.Printf("  α^(3M)(1/2,1/6,1/6,1/6) = %.4f (top entry 7/12 ≈ 0.5833)\n", alphaLow)
	fmt.Println("  7/12 > 1/2: the expected outcome of the *dominating* process fails to")
	fmt.Println("  majorize the dominated one — majorization alone cannot order h vs h+1.")
}
