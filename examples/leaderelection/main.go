// Leader election: every node starts as its own candidate (n distinct
// colors) and the system must elect a single winner. This is the regime
// where the paper separates the processes (Theorem 1): 3-Majority
// ("comply" on a mismatch) finishes in Õ(n^{3/4}) rounds while 2-Choices
// ("ignore" on a mismatch) needs almost linear time, despite both having
// identical expected one-round behavior.
package main

import (
	"context"
	"fmt"
	"log"

	consensus "github.com/ignorecomply/consensus"
)

func main() {
	const (
		n        = 4096
		replicas = 5
		workers  = 4
	)
	base := consensus.NewRNG(7)
	start := consensus.SingletonConfig(n)

	contenders := []struct {
		name    string
		factory consensus.Factory
	}{
		{name: "Voter", factory: func() consensus.Rule { return consensus.NewVoter() }},
		{name: "2-Choices (ignore)", factory: func() consensus.Rule { return consensus.NewTwoChoices() }},
		{name: "3-Majority (comply)", factory: func() consensus.Rule { return consensus.NewThreeMajority() }},
	}

	fmt.Printf("leader election among %d candidates (%d replicas each)\n\n", n, replicas)
	var baseline float64
	for _, c := range contenders {
		runner := consensus.NewFactoryRunner(c.factory,
			consensus.WithMaxRounds(1000*n),
			consensus.WithRNG(base))
		results, err := runner.RunReplicas(context.Background(), start, replicas, workers)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, res := range results {
			total += res.Rounds
		}
		mean := float64(total) / replicas
		if baseline == 0 {
			baseline = mean
		}
		fmt.Printf("  %-22s mean %8.1f rounds  (%.2fx Voter)\n", c.name, mean, mean/baseline)
	}
	fmt.Println("\n2-Choices ignores disagreeing samples and stalls with many candidates;")
	fmt.Println("3-Majority complies with a random sample and breaks the symmetry fast.")
}
