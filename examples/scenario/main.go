// Scenario: describe a whole experiment as data — a bias sweep comparing
// 2-Choices and 3-Majority (the paper's §1.1 biased regime) — and execute
// it through the engine-agnostic suite executor. No run loop, no replica
// plumbing: the JSON says what to run, the executor fans the
// cells × groups × replicas out deterministically, and the default
// summary reducer tabulates per-cell round statistics.
//
// The same spec could live in a .json file and run via
//
//	consensus-sim -scenario bias-sweep.json -scale quick -seed 7
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/ignorecomply/consensus/scenario"
)

const biasSweep = `{
	"schema": 1,
	"name": "bias-sweep",
	"table": {
		"title": "Does an initial bias rescue 2-Choices?",
		"claim": "§1.1: with bias ≥ √(n·ln n) both processes are O(k·log n)"
	},
	"params": {"n": {"quick": 8192, "full": 65536}, "k": 16},
	"sweep": [
		{"name": "bias", "values": [
			0,
			"ceil(sqrt(n * log(n)) / 4)",
			"ceil(sqrt(n * log(n)))",
			"4 * ceil(sqrt(n * log(n)))"
		]}
	],
	"replicas": 6,
	"init": {"generator": "biased", "k": "k", "bias": "bias"},
	"stop": {"max_rounds": "200 * n"},
	"runs": [
		{"id": "2-choices", "rule": {"name": "2-choices"}},
		{"id": "3-majority", "rule": {"name": "3-majority"}}
	]
}`

func main() {
	s, err := scenario.DecodeBytes([]byte(biasSweep))
	if err != nil {
		log.Fatal(err)
	}

	// Expansion is a pure function of (spec, params): inspect what would
	// run before running it.
	params := scenario.Params{Seed: 7, Scale: scenario.Quick}
	specs, err := s.Expand(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q expands to %d runs (%d cells × 2 groups × %d replicas)\n\n",
		s.Name, len(specs), len(specs)/(2*specs[0].Replicas), specs[0].Replicas)

	tbl, err := scenario.Run(context.Background(), s, params)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the 2-Choices/3-Majority gap shrinks toward 1 as the bias approaches √(n·ln n)")
}
