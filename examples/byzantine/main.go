// Byzantine agreement: 3-Majority self-stabilizes against a dynamic
// adversary that corrupts a bounded set of nodes every round (§5). The
// system must reach — and hold — an almost-consensus on a *valid* color:
// one that some correct node supported initially. The example sweeps the
// adversary's per-round budget until stability breaks.
package main

import (
	"context"
	"fmt"
	"log"

	consensus "github.com/ignorecomply/consensus"
)

func main() {
	const (
		n       = 8192
		k       = 8
		epsilon = 0.05 // almost-consensus threshold: (1-ε)·n
		window  = 25   // rounds the majority must hold
	)
	start := consensus.BalancedConfig(n, k)

	fmt.Printf("3-Majority, n=%d, k=%d, adversary injects an invalid color each round\n\n", n, k)
	for _, budget := range []int{0, 8, 64, 512, 2048} {
		adv := &consensus.InjectInvalid{F: budget}
		runner := consensus.NewRunner(consensus.NewThreeMajority(),
			consensus.WithAdversary(adv, epsilon, window),
			consensus.WithMaxRounds(50*n),
			consensus.WithSeed(uint64(100+budget)))
		res, err := runner.Run(context.Background(), start)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "UNSTABLE (adversary wins)"
		if res.Stable {
			verdict = fmt.Sprintf("stable after %d rounds", res.Rounds)
		}
		validity := "valid"
		if !res.WinnerValid {
			validity = "INVALID"
		}
		fmt.Printf("  F=%5d: %-32s winner color %3d (%s), %6d corruptions applied\n",
			budget, verdict, res.WinnerLabel, validity, res.Corrupted)
	}
	fmt.Println("\nvalidity: the winning color must have been supported initially by a")
	fmt.Println("correct node — the injected color (label -2) must never win.")
}
