// Duality: Lemma 4 (Figure 1) couples the Voter process with coalescing
// random walks through shared per-node random choices Y_t(u): running the
// arrows forward coalesces walks, running them backward spreads opinions,
// and the counts agree at every horizon — on any graph. This example
// prints the coupled counts side by side on two very different topologies.
package main

import (
	"fmt"
	"log"

	consensus "github.com/ignorecomply/consensus"
)

func main() {
	r := consensus.NewRNG(2024)

	type topo struct {
		name    string
		g       consensus.Graph
		horizon int
	}
	topos := []topo{
		{name: "complete graph (n=64)", g: consensus.NewCompleteGraph(64), horizon: 200},
		{name: "ring (n=32)", g: consensus.NewRingGraph(32), horizon: 200},
	}
	for _, tp := range topos {
		tb, err := consensus.NewDualityTable(tp.g, tp.horizon, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — shared randomness, walks vs opinions:\n", tp.name)
		fmt.Println("  horizon  walks  opinions  equal")
		for _, T := range []int{0, 1, 2, 5, 10, 25, 50, 100, 200} {
			if T > tp.horizon {
				break
			}
			walks, err := tb.WalksAfter(T)
			if err != nil {
				log.Fatal(err)
			}
			opinions, err := tb.OpinionsAfter(T)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %7d  %5d  %8d  %v\n", T, walks, opinions, walks == opinions)
		}
		mismatch, err := tb.Verify(tp.horizon)
		if err != nil {
			log.Fatal(err)
		}
		if mismatch != nil {
			log.Fatalf("Lemma 4 violated at T=%d!", mismatch.T)
		}
		fmt.Printf("  identity T^k_V = T^k_C verified at every horizon 0..%d\n\n", tp.horizon)
	}
}
